#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "metrics/analysis.h"
#include "pipeline/apps.h"

namespace pard {
namespace {

// Builds a request with a chosen fate, timing, and per-module GPU times.
RequestPtr Synthetic(std::uint64_t id, SimTime sent, Duration slo, RequestFate fate,
                     SimTime finish, int num_modules, int drop_module = -1) {
  auto r = std::make_shared<Request>();
  r->id = id;
  r->sent = sent;
  r->slo = slo;
  r->deadline = sent + slo;
  r->fate = fate;
  r->finish = finish;
  r->drop_module = drop_module;
  r->hops.resize(static_cast<std::size_t>(num_modules));
  r->merge_arrivals.assign(static_cast<std::size_t>(num_modules), 0);
  return r;
}

void AddHop(const RequestPtr& r, int module, SimTime arrive, Duration q, Duration w, Duration d,
            Duration gpu) {
  HopRecord& hop = r->hops[static_cast<std::size_t>(module)];
  hop.arrive = arrive;
  hop.batch_entry = arrive + q;
  hop.exec_start = hop.batch_entry + w;
  hop.exec_end = hop.exec_start + d;
  hop.gpu_time = gpu;
  hop.executed = true;
}

PipelineSpec Tm() { return MakeTrafficMonitoring(); }

TEST(RunAnalysis, CountsAndRates) {
  std::vector<RequestPtr> reqs;
  reqs.push_back(Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3));
  reqs.push_back(Synthetic(2, 0, MsToUs(400), RequestFate::kLate, MsToUs(900), 3));
  reqs.push_back(Synthetic(3, 0, MsToUs(400), RequestFate::kDropped, MsToUs(50), 3, 1));
  RunAnalysis a(reqs, Tm());
  EXPECT_EQ(a.Total(), 3u);
  EXPECT_EQ(a.GoodCount(), 1u);
  EXPECT_EQ(a.DroppedCount(), 2u);  // Late counts as dropped (§5.1).
  EXPECT_NEAR(a.DropRate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.NormalizedGoodput(), 1.0 / 3.0, 1e-12);
}

TEST(RunAnalysis, InvalidRateWeighsGpuTime) {
  std::vector<RequestPtr> reqs;
  auto good = Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(good, 0, 0, 0, 0, MsToUs(10), MsToUs(30));
  auto bad = Synthetic(2, 0, MsToUs(400), RequestFate::kDropped, MsToUs(50), 3, 2);
  AddHop(bad, 0, 0, 0, 0, MsToUs(10), MsToUs(10));
  AddHop(bad, 1, MsToUs(20), 0, 0, MsToUs(10), MsToUs(60));
  reqs = {good, bad};
  RunAnalysis a(reqs, Tm());
  // Invalid GPU: 10+60 of total 100.
  EXPECT_NEAR(a.InvalidRate(), 0.7, 1e-12);
}

TEST(RunAnalysis, InvalidRateZeroWhenNoGpuTime) {
  std::vector<RequestPtr> reqs = {
      Synthetic(1, 0, MsToUs(400), RequestFate::kDropped, 0, 3, 0)};
  RunAnalysis a(reqs, Tm());
  EXPECT_DOUBLE_EQ(a.InvalidRate(), 0.0);
}

TEST(RunAnalysis, PerModuleDropShareAttributesLateToSink) {
  std::vector<RequestPtr> reqs;
  reqs.push_back(Synthetic(1, 0, MsToUs(400), RequestFate::kDropped, 0, 3, 0));
  reqs.push_back(Synthetic(2, 0, MsToUs(400), RequestFate::kDropped, 0, 3, 0));
  reqs.push_back(Synthetic(3, 0, MsToUs(400), RequestFate::kLate, MsToUs(999), 3));
  reqs.push_back(Synthetic(4, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(10), 3));
  RunAnalysis a(reqs, Tm());
  const std::vector<double> share = a.PerModuleDropShare();
  EXPECT_NEAR(share[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(share[1], 0.0, 1e-12);
  EXPECT_NEAR(share[2], 1.0 / 3.0, 1e-12);  // Late -> sink.
}

TEST(RunAnalysis, SliceFiltersBySendTime) {
  std::vector<RequestPtr> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(Synthetic(static_cast<std::uint64_t>(i), SecToUs(i), MsToUs(400),
                             i < 5 ? RequestFate::kCompleted : RequestFate::kDropped,
                             SecToUs(i) + MsToUs(100), 3, i < 5 ? -1 : 0));
  }
  RunAnalysis a(reqs, Tm());
  const RunAnalysis good_half = a.Slice(0, SecToUs(4));
  EXPECT_EQ(good_half.Total(), 5u);
  EXPECT_DOUBLE_EQ(good_half.DropRate(), 0.0);
  const RunAnalysis bad_half = a.Slice(SecToUs(5), SecToUs(9));
  EXPECT_DOUBLE_EQ(bad_half.DropRate(), 1.0);
}

TEST(RunAnalysis, MinNormalizedGoodputFindsWorstWindow) {
  std::vector<RequestPtr> reqs;
  // 20s of traffic at 1 req/s; seconds 10..14 all dropped.
  for (int i = 0; i < 20; ++i) {
    const bool bad = i >= 10 && i < 15;
    reqs.push_back(Synthetic(static_cast<std::uint64_t>(i), SecToUs(i), MsToUs(400),
                             bad ? RequestFate::kDropped : RequestFate::kCompleted,
                             SecToUs(i) + MsToUs(50), 3, bad ? 0 : -1));
  }
  RunAnalysis a(reqs, Tm());
  // A 4s window inside the bad stretch has goodput 0.
  EXPECT_NEAR(a.MinNormalizedGoodput(SecToUs(4)), 0.0, 1e-9);
  // The full-span window averages 15/20.
  EXPECT_NEAR(a.MinNormalizedGoodput(SecToUs(40)), 0.75, 0.1);
  // Max window drop rate mirrors it.
  EXPECT_NEAR(a.MaxWindowDropRate(SecToUs(4)), 1.0, 1e-9);
}

TEST(RunAnalysis, TransientSeriesSumsToCounts) {
  std::vector<RequestPtr> reqs;
  for (int i = 0; i < 30; ++i) {
    const bool bad = i % 3 == 0;
    reqs.push_back(Synthetic(static_cast<std::uint64_t>(i), SecToUs(i), MsToUs(400),
                             bad ? RequestFate::kDropped : RequestFate::kCompleted,
                             SecToUs(i) + MsToUs(10), 3, bad ? 1 : -1));
  }
  RunAnalysis a(reqs, Tm());
  const auto series = a.TransientDropRateSeries(SecToUs(1));
  ASSERT_FALSE(series.empty());
  double mean = 0.0;
  for (const SeriesPoint& p : series) {
    mean += p.value;
  }
  mean /= static_cast<double>(series.size());
  EXPECT_NEAR(mean, 1.0 / 3.0, 0.05);
}

TEST(RunAnalysis, GoodputSeriesCountsCompletions) {
  std::vector<RequestPtr> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(Synthetic(static_cast<std::uint64_t>(i), SecToUs(i), MsToUs(400),
                             RequestFate::kCompleted, SecToUs(i) + MsToUs(100), 3));
  }
  RunAnalysis a(reqs, Tm());
  const auto series = a.GoodputSeries(SecToUs(1));
  double total = 0.0;
  for (const SeriesPoint& p : series) {
    total += p.value;  // req/s in 1s bins -> sums to count.
  }
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(RunAnalysis, QueueDelayPerModuleAveragesExecutedHops) {
  std::vector<RequestPtr> reqs;
  auto r1 = Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(r1, 0, 0, MsToUs(4), 0, MsToUs(10), MsToUs(10));
  auto r2 = Synthetic(2, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(r2, 0, 0, MsToUs(8), 0, MsToUs(10), MsToUs(10));
  reqs = {r1, r2};
  RunAnalysis a(reqs, Tm());
  const std::vector<double> q = a.MeanQueueDelayPerModule();
  EXPECT_NEAR(q[0], 6.0 * kUsPerMs, 1e-6);
  EXPECT_DOUBLE_EQ(q[1], 0.0);  // No executed hops at module 1.
}

TEST(RunAnalysis, ConsumedBudgetCountsGoodRequestsOnly) {
  std::vector<RequestPtr> reqs;
  auto good = Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(good, 0, MsToUs(5), MsToUs(5), MsToUs(5), MsToUs(10), MsToUs(10));
  auto dropped = Synthetic(2, 0, MsToUs(400), RequestFate::kDropped, MsToUs(50), 3, 1);
  AddHop(dropped, 0, MsToUs(5), MsToUs(50), MsToUs(50), MsToUs(10), MsToUs(10));
  reqs = {good, dropped};
  RunAnalysis a(reqs, Tm());
  const std::vector<double> consumed = a.MeanConsumedBudgetPerModule();
  // Only the good request counts: Q+W+D = 20ms at module 0.
  EXPECT_NEAR(consumed[0], 20.0 * kUsPerMs, 1e-6);
}

TEST(RunAnalysis, SumDistributionsReflectHops) {
  std::vector<RequestPtr> reqs;
  auto r = Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(r, 0, 0, MsToUs(1), MsToUs(2), MsToUs(3), MsToUs(3));
  AddHop(r, 1, MsToUs(10), MsToUs(4), MsToUs(5), MsToUs(6), MsToUs(6));
  reqs = {r};
  RunAnalysis a(reqs, Tm());
  EXPECT_DOUBLE_EQ(a.SumQueueDistribution().Mean(), 5.0 * kUsPerMs);
  EXPECT_DOUBLE_EQ(a.SumWaitDistribution().Mean(), 7.0 * kUsPerMs);
  EXPECT_DOUBLE_EQ(a.SumExecDistribution().Mean(), 9.0 * kUsPerMs);
}

TEST(RunAnalysis, RemainingBudgetOrdersByBatchEntry) {
  std::vector<RequestPtr> reqs;
  // Request 2 enters module 0 earlier than request 1.
  auto r1 = Synthetic(1, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(r1, 0, MsToUs(50), 0, 0, MsToUs(10), MsToUs(10));
  auto r2 = Synthetic(2, 0, MsToUs(400), RequestFate::kCompleted, MsToUs(100), 3);
  AddHop(r2, 0, MsToUs(20), 0, 0, MsToUs(10), MsToUs(10));
  reqs = {r1, r2};
  RunAnalysis a(reqs, Tm());
  const std::vector<double> budgets = a.RemainingBudgetAt(0, 10);
  ASSERT_EQ(budgets.size(), 2u);
  // First by batch entry = r2 at 20ms -> remaining 380ms; then r1 -> 350ms.
  EXPECT_NEAR(budgets[0], 380.0 * kUsPerMs, 1e-6);
  EXPECT_NEAR(budgets[1], 350.0 * kUsPerMs, 1e-6);
}

TEST(RunAnalysis, EmptyRunIsAllZeros) {
  RunAnalysis a({}, Tm());
  EXPECT_EQ(a.Total(), 0u);
  EXPECT_DOUBLE_EQ(a.DropRate(), 0.0);
  EXPECT_DOUBLE_EQ(a.InvalidRate(), 0.0);
  EXPECT_DOUBLE_EQ(a.MeanGoodput(), 0.0);
  EXPECT_TRUE(a.GoodputSeries(SecToUs(1)).empty());
}

}  // namespace
}  // namespace pard
