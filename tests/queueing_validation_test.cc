// Queueing-theory validation of the serving substrate.
//
// Before trusting policy comparisons built on the simulator, the simulator
// itself must reproduce known queueing results. With batch size 1 a worker
// is a plain single server with deterministic service: under Poisson
// arrivals that is M/D/1, whose mean waiting time has the closed form
//   Wq = rho / (2 (1 - rho)) * D.
// These tests drive the worker with controlled arrivals and check utilization
// and delays against theory.
#include <gtest/gtest.h>

#include <string>

#include "baselines/naive_policy.h"
#include "common/rng.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace pard {
namespace {

// A single-module pipeline whose SLO forces batch size 1 (2*d(2) > share).
// eye_tracking: d(1) = 7 ms, d(2) = 9 ms -> SLO 17 ms gives budget 17 ms,
// 2*d(1) = 14 <= 17 but 2*d(2) = 18 > 17.
PipelineSpec SingleServerSpec() {
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  return PipelineSpec("mdq", MsToUs(17), {m});
}

constexpr double kServiceMs = 7.0;  // d(1) of eye_tracking.

struct QueueStats {
  double mean_queue_delay_ms = 0.0;  // Q: time in DEPQ.
  double mean_wait_ms = 0.0;         // W: batch wait.
  double utilization = 0.0;          // Busy fraction proxy.
  std::size_t served = 0;
};

QueueStats RunSingleServer(double rate_per_sec, double duration_s, std::uint64_t seed) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1};
  options.network_delay = 0;
  PipelineRuntime rt(SingleServerSpec(), options, &policy, rate_per_sec);
  EXPECT_EQ(rt.batch_sizes()[0], 1) << "spec must force batch size 1";
  Rng rng(seed);
  const auto arrivals = GenerateArrivals(RateFunction::Constant(rate_per_sec), 0,
                                         SecToUs(duration_s), rng);
  rt.RunTrace(arrivals);
  QueueStats stats;
  double busy_us = 0.0;
  for (const RequestPtr& r : rt.requests()) {
    const HopRecord& hop = r->hops[0];
    if (!hop.executed) {
      continue;
    }
    ++stats.served;
    stats.mean_queue_delay_ms += UsToMs(hop.QueueDelay());
    stats.mean_wait_ms += UsToMs(hop.BatchWait());
    busy_us += static_cast<double>(hop.ExecDuration());
  }
  if (stats.served > 0) {
    stats.mean_queue_delay_ms /= static_cast<double>(stats.served);
    stats.mean_wait_ms /= static_cast<double>(stats.served);
  }
  stats.utilization = busy_us / static_cast<double>(SecToUs(duration_s));
  return stats;
}

// Utilization must equal rho = lambda * D.
class UtilizationTest : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationTest, MatchesOfferedLoad) {
  const double rho = GetParam();
  const double rate = rho / (kServiceMs / 1000.0);
  const QueueStats stats = RunSingleServer(rate, 60.0, 17);
  EXPECT_NEAR(stats.utilization, rho, 0.03) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, UtilizationTest, ::testing::Values(0.2, 0.4, 0.6, 0.8));

// Total delay before service (Q + W in the batching model) must match the
// M/D/1 waiting time.
class MD1WaitTest : public ::testing::TestWithParam<double> {};

TEST_P(MD1WaitTest, MatchesPollaczekKhinchine) {
  const double rho = GetParam();
  const double rate = rho / (kServiceMs / 1000.0);
  const QueueStats stats = RunSingleServer(rate, 300.0, 23);
  const double theory_ms = rho / (2.0 * (1.0 - rho)) * kServiceMs;
  const double measured_ms = stats.mean_queue_delay_ms + stats.mean_wait_ms;
  // 15% tolerance: finite run + deterministic service.
  EXPECT_NEAR(measured_ms, theory_ms, std::max(0.3, theory_ms * 0.15)) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, MD1WaitTest, ::testing::Values(0.3, 0.5, 0.7));

TEST(QueueingValidation, DelayExplodesPastSaturation) {
  const QueueStats stable = RunSingleServer(0.7 / (kServiceMs / 1000.0), 60.0, 5);
  const QueueStats overloaded = RunSingleServer(1.4 / (kServiceMs / 1000.0), 60.0, 5);
  EXPECT_GT(overloaded.mean_queue_delay_ms + overloaded.mean_wait_ms,
            10.0 * (stable.mean_queue_delay_ms + stable.mean_wait_ms));
}

TEST(QueueingValidation, WorkConservation) {
  // Served count equals arrivals under stable load (nothing lost).
  const double rate = 0.5 / (kServiceMs / 1000.0);
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1};
  options.network_delay = 0;
  PipelineRuntime rt(SingleServerSpec(), options, &policy, rate);
  Rng rng(31);
  const auto arrivals =
      GenerateArrivals(RateFunction::Constant(rate), 0, SecToUs(30), rng);
  rt.RunTrace(arrivals);
  std::size_t served = 0;
  for (const RequestPtr& r : rt.requests()) {
    served += r->hops[0].executed ? 1 : 0;
  }
  EXPECT_EQ(served, arrivals.size());
}

TEST(QueueingValidation, TwoWorkersHalveUtilizationEach) {
  // With two workers at total rho = 0.8, per-worker busy time is ~0.4 of the
  // run, so total GPU busy time is the same but queueing drops sharply.
  const double rate = 0.8 / (kServiceMs / 1000.0);
  const QueueStats one = RunSingleServer(rate, 120.0, 41);

  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {2};
  options.network_delay = 0;
  PipelineRuntime rt(SingleServerSpec(), options, &policy, rate);
  Rng rng(41);
  const auto arrivals =
      GenerateArrivals(RateFunction::Constant(rate), 0, SecToUs(120), rng);
  rt.RunTrace(arrivals);
  double delay_ms = 0.0;
  std::size_t served = 0;
  for (const RequestPtr& r : rt.requests()) {
    const HopRecord& hop = r->hops[0];
    if (hop.executed) {
      ++served;
      delay_ms += UsToMs(hop.QueueDelay() + hop.BatchWait());
    }
  }
  ASSERT_GT(served, 0u);
  delay_ms /= static_cast<double>(served);
  EXPECT_LT(delay_ms, 0.5 * (one.mean_queue_delay_ms + one.mean_wait_ms));
}

}  // namespace
}  // namespace pard
