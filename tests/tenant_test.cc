// Multi-tenant serving: the tenant catalog, the ingress governor, and the
// three pinned end-to-end properties from the PR charter:
//
//   1. Weighted goodput — on an overloaded 3-tenant mix, governed admission
//      (shed lowest-weight first) clears at least as much *weighted*
//      normalized goodput as the no-shed PARD baseline on the identical
//      arrival stream and tenant assignment.
//   2. Per-tenant conservation — under a chaos schedule every tenant's
//      drop-reason counts partition its dropped population exactly; tenant
//      totals partition the run.
//   3. Fairness floor — no tenant's ingress admit rate falls below its
//      admit_floor (up to hash quantization).
//
// The serve-substrate case runs the same invariants through real threads so
// the tsan preset exercises the lock-free governor reads concurrently with
// Resync.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "core/tenant_governor.h"
#include "harness/experiment.h"
#include "jsonio/json.h"
#include "metrics/analysis.h"
#include "obs/drop_reason.h"
#include "pipeline/apps.h"
#include "pipeline/backend_profile.h"
#include "pipeline/tenant_spec.h"
#include "resilience/chaos.h"
#include "runtime/backend_fleet.h"
#include "runtime/state_board.h"

namespace pard {
namespace {

// Three tiers, equal SLO class so weighted-vs-unweighted comparisons are
// apples-to-apples (slo_scale tiers are exercised separately below).
std::vector<TenantSpec> FlatSloCatalog() {
  std::vector<TenantSpec> catalog(3);
  catalog[0] = TenantSpec{"gold", 4.0, 0.2, 1.0, 0.2};
  catalog[1] = TenantSpec{"silver", 2.0, 0.3, 1.0, 0.2};
  catalog[2] = TenantSpec{"bronze", 1.0, 0.5, 1.0, 0.1};
  return catalog;
}

// The same mix with shedding disabled: every floor is 1.0, so the governor
// may never drop at ingress and admission degenerates to baseline PARD with
// tenant stamping only.
std::vector<TenantSpec> NoShedCatalog() {
  std::vector<TenantSpec> catalog = FlatSloCatalog();
  for (TenantSpec& t : catalog) {
    t.admit_floor = 1.0;
  }
  return catalog;
}

ExperimentConfig OverloadConfig() {
  ExperimentConfig config;
  config.app = "lv";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 20.0;
  // Provisioned at 1.15x the trace MEAN, the tweet trace's burst regions
  // run well past capacity, so the governor sees sustained load > 1 and a
  // real shed budget (the same regime as the pardsim smoke runs).
  config.base_rate = 300.0;
  config.seed = 7;
  // Live scaling tracks demand with ceil() headroom, so burst load factors
  // genuinely exceed 1 at the sync ticks (a statically over-provisioned
  // fleet absorbs the smoothed burst and the governor never engages).
  config.runtime.enable_scaling = true;
  return config;
}

// ----------------------------------------------------------- catalog JSON --

TEST(TenantSpecJson, RoundTripsIncludingDefaults) {
  TenantSpec spec;
  spec.name = "batch";
  spec.weight = 1.5;
  spec.share = 0.25;
  spec.slo_scale = 2.0;
  spec.admit_floor = 0.1;
  EXPECT_EQ(TenantSpec::FromJson(spec.ToJson()), spec);

  // Default slo_scale/admit_floor are omitted from the JSON and restored on
  // parse.
  TenantSpec plain;
  plain.name = "plain";
  plain.weight = 2.0;
  plain.share = 0.75;
  const JsonValue v = plain.ToJson();
  EXPECT_EQ(v.AsObject().count("slo_scale"), 0u);
  EXPECT_EQ(v.AsObject().count("admit_floor"), 0u);
  EXPECT_EQ(TenantSpec::FromJson(v), plain);
}

TEST(TenantSpecJson, RejectsUnknownFieldsAndBadCatalogs) {
  EXPECT_THROW(ParseTenantCatalogText(R"({"tenants": [{"name": "a", "share": 1.0,
                                       "wieght": 2.0}]})"),
               JsonError);
  EXPECT_THROW(ParseTenantCatalogText(R"({"tenant": []})"), JsonError);
  // Shares must sum to 1.
  EXPECT_THROW(ParseTenantCatalogText(
                   R"({"tenants": [{"name": "a", "share": 0.5}]})"),
               CheckError);
  // Duplicate names.
  EXPECT_THROW(ParseTenantCatalogText(
                   R"({"tenants": [{"name": "a", "share": 0.5},
                                   {"name": "a", "share": 0.5}]})"),
               CheckError);
  EXPECT_NO_THROW(ValidateTenantCatalog(MakeReferenceTenantCatalog()));
}

// -------------------------------------------------------------- governor --

std::vector<ModuleState> StatesWithLoad(double load) {
  std::vector<ModuleState> states(3);
  states[1].load_factor = load;  // Worst module drives the plan.
  return states;
}

TEST(TenantGovernor, AssignmentMatchesSharesAndIsDeterministic) {
  TenantGovernor governor(FlatSloCatalog(), /*seed=*/42);
  const int kDraws = 20000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int t = governor.TenantOf(static_cast<std::uint64_t>(i));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 3);
    ++counts[static_cast<std::size_t>(t)];
    EXPECT_EQ(t, governor.TenantOf(static_cast<std::uint64_t>(i)));  // Pure.
  }
  EXPECT_NEAR(counts[0] / double(kDraws), 0.2, 0.02);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.5, 0.02);
}

TEST(TenantGovernor, ShedsLowestWeightFirstAndHonorsFloors) {
  TenantGovernor governor(FlatSloCatalog(), /*seed=*/42);
  // No overload: everyone admits everything.
  governor.Resync(StatesWithLoad(0.8));
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(governor.AdmitProbability(t), 1.0);
  }

  // Mild overload (load 1.25 -> shed 20% of traffic): bronze's 0.5 share can
  // absorb it all (cap 0.5 * (1 - 0.1) = 0.45 > 0.2), so gold/silver stay
  // untouched and bronze admits 1 - 0.2/0.5 = 60%.
  governor.Resync(StatesWithLoad(1.25));
  EXPECT_EQ(governor.AdmitProbability(0), 1.0);
  EXPECT_EQ(governor.AdmitProbability(1), 1.0);
  EXPECT_NEAR(governor.AdmitProbability(2), 0.6, 1e-12);

  // Extreme overload (load 10 -> shed 90%): every tenant is pushed to its
  // floor; the plan can never go below it.
  governor.Resync(StatesWithLoad(10.0));
  EXPECT_NEAR(governor.AdmitProbability(0), 0.2, 1e-12);
  EXPECT_NEAR(governor.AdmitProbability(1), 0.2, 1e-12);
  EXPECT_NEAR(governor.AdmitProbability(2), 0.1, 1e-12);

  // Recovery: the next healthy tick reopens the gates.
  governor.Resync(StatesWithLoad(0.5));
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(governor.AdmitProbability(t), 1.0);
  }
}

TEST(TenantGovernor, NoShedCatalogNeverDrops) {
  TenantGovernor governor(NoShedCatalog(), /*seed=*/42);
  governor.Resync(StatesWithLoad(25.0));
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(governor.AdmitProbability(t), 1.0);
    for (std::uint64_t id = 0; id < 500; ++id) {
      if (governor.TenantOf(id) == t) {
        EXPECT_TRUE(governor.AdmitAtIngress(id, t));
      }
    }
    EXPECT_EQ(governor.ShedCount(t), 0u);
  }
}

// ------------------------------------------------------------- simulator --

TEST(SimTenants, WeightedGoodputBeatsNoShedBaselineUnderOverload) {
  // Pinned property 1. Identical arrivals + identical tenant assignment;
  // the ONLY difference is whether the governor may shed at ingress.
  ExperimentConfig governed = OverloadConfig();
  governed.runtime.tenants = FlatSloCatalog();
  ExperimentConfig baseline = OverloadConfig();
  baseline.runtime.tenants = NoShedCatalog();

  const ExperimentResult a = RunExperiment(governed);
  const ExperimentResult b = RunExperiment(baseline);
  ASSERT_EQ(a.analysis->Total(), b.analysis->Total());
  EXPECT_GE(a.analysis->WeightedNormalizedGoodput(),
            b.analysis->WeightedNormalizedGoodput())
      << "governed=" << a.analysis->WeightedNormalizedGoodput()
      << " baseline=" << b.analysis->WeightedNormalizedGoodput();
  EXPECT_GT(a.analysis->WeightedNormalizedGoodput(), 0.0);

  // The governor shed only the cheap tier: ingress drops concentrate on
  // bronze, and gold keeps a higher admit rate than bronze.
  const std::vector<TenantBreakdown> tenants = a.analysis->PerTenant();
  ASSERT_EQ(tenants.size(), 3u);
  const auto shed_of = [&](int t) {
    return tenants[static_cast<std::size_t>(t)]
        .drop_reasons[static_cast<std::size_t>(DropReason::kTenantShed)];
  };
  EXPECT_GT(shed_of(2), 0u);
  EXPECT_GE(shed_of(2), shed_of(0));
}

TEST(SimTenants, PerTenantConservationExactUnderChaos) {
  // Pinned property 2: tenant totals partition the run and each tenant's
  // reason counts partition its dropped population — exactly, even with
  // kills, hangs, a slowdown and a sync stall in flight.
  ExperimentConfig config = OverloadConfig();
  config.runtime.tenants = MakeReferenceTenantCatalog();
  config.runtime.fleet_events = ParseFaultSchedule("4:0:kill:1,6:1:kill:1,8:1:add:1");
  config.runtime.resilience.chaos =
      ParseChaosSchedule("2.5:1:hang:1:1.5, 5:0:slow:2.0:3, 7:stall-sync:2");
  config.runtime.resilience.max_retries = 2;

  const ExperimentResult result = RunExperiment(config);
  const RunAnalysis& analysis = *result.analysis;
  const std::vector<TenantBreakdown> tenants = analysis.PerTenant();
  ASSERT_EQ(tenants.size(), 3u);

  std::size_t total = 0;
  std::size_t good = 0;
  std::size_t dropped = 0;
  for (const TenantBreakdown& b : tenants) {
    EXPECT_EQ(b.good + b.dropped, b.total);
    ASSERT_EQ(b.drop_reasons.size(), static_cast<std::size_t>(kNumDropReasons));
    EXPECT_EQ(b.drop_reasons[0], 0u);  // kNone = lost attribution.
    std::size_t reason_sum = 0;
    for (int r = 1; r < kNumDropReasons; ++r) {
      reason_sum += b.drop_reasons[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(reason_sum, b.dropped);
    total += b.total;
    good += b.good;
    dropped += b.dropped;
  }
  EXPECT_EQ(total, analysis.Total());  // Every request carries a tenant tag.
  EXPECT_EQ(good, analysis.GoodCount());
  EXPECT_EQ(dropped, analysis.DroppedCount());
}

TEST(SimTenants, FairnessFloorHeldUnderSustainedOverload) {
  // Pinned property 3: even at ~2.5x structural overload no tenant's admit
  // rate falls below its floor (tolerance covers hash quantization on a
  // finite sample).
  ExperimentConfig config = OverloadConfig();
  config.base_rate = 400.0;
  config.runtime.tenants = MakeReferenceTenantCatalog();
  const ExperimentResult result = RunExperiment(config);
  const std::vector<TenantBreakdown> tenants = result.analysis->PerTenant();
  ASSERT_EQ(tenants.size(), 3u);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantBreakdown& b = tenants[t];
    ASSERT_GT(b.total, 100u);
    const double shed = static_cast<double>(
        b.drop_reasons[static_cast<std::size_t>(DropReason::kTenantShed)]);
    const double admit_rate = 1.0 - shed / static_cast<double>(b.total);
    EXPECT_GE(admit_rate, config.runtime.tenants[t].admit_floor - 0.05)
        << config.runtime.tenants[t].name;
  }
}

TEST(SimTenants, TenantRunsAreBitDeterministic) {
  ExperimentConfig config = OverloadConfig();
  config.runtime.tenants = MakeReferenceTenantCatalog();
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  ASSERT_EQ(a.analysis->Total(), b.analysis->Total());
  EXPECT_EQ(a.fleet_cost, b.fleet_cost);
  for (std::size_t i = 0; i < a.analysis->requests().size(); ++i) {
    const Request& x = *a.analysis->requests()[i];
    const Request& y = *b.analysis->requests()[i];
    ASSERT_EQ(x.tenant, y.tenant) << "request " << x.id;
    ASSERT_EQ(x.weight, y.weight) << "request " << x.id;
    ASSERT_EQ(x.fate, y.fate) << "request " << x.id;
    ASSERT_EQ(x.drop_reason, y.drop_reason) << "request " << x.id;
  }
}

TEST(SimTenants, SloScaleStampsPerTenantDeadlines) {
  // A 2x slo_scale tier must carry twice the pipeline SLO on its requests.
  ExperimentConfig config = OverloadConfig();
  config.duration_s = 5.0;
  config.runtime.tenants = MakeReferenceTenantCatalog();  // batch: slo_scale 2.
  const ExperimentResult result = RunExperiment(config);
  const Duration base_slo = result.spec.slo();
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_GE(req->tenant, 0);
    const double scale = config.runtime.tenants[static_cast<std::size_t>(req->tenant)]
                             .slo_scale;
    EXPECT_EQ(req->slo, static_cast<Duration>(std::llround(
                            static_cast<double>(base_slo) * scale)))
        << "request " << req->id;
  }
}

TEST(SimTenants, CostAwareProvisioningPrefersCheapEffectiveGrades) {
  // Two grades: full speed at 4x cost vs half speed at 1x cost. Per unit of
  // cost the slow grade does 2x the work, so cost-aware provisioning should
  // finish the run strictly cheaper than round-robin while goodput stays
  // in the same regime (more, slower workers).
  ExperimentConfig round_robin = OverloadConfig();
  round_robin.base_rate = 150.0;
  round_robin.runtime.enable_scaling = true;
  round_robin.runtime.fixed_workers.clear();
  PipelineSpec spec = MakeApp("tm");
  spec.set_backends(ParseBackendGrades("1.0@4.0,0.5@1.0"));
  round_robin.custom_spec = spec;

  ExperimentConfig cost_aware = round_robin;
  cost_aware.runtime.cost_aware_provisioning = true;

  const ExperimentResult rr = RunExperiment(round_robin);
  const ExperimentResult ca = RunExperiment(cost_aware);
  ASSERT_GT(rr.fleet_cost, 0.0);
  ASSERT_GT(ca.fleet_cost, 0.0);
  const double rr_value = rr.analysis->WeightedGoodCount() / rr.fleet_cost;
  const double ca_value = ca.analysis->WeightedGoodCount() / ca.fleet_cost;
  EXPECT_GT(ca_value, rr_value)
      << "cost-aware " << ca_value << " vs round-robin " << rr_value;
}

// --------------------------------------------------------------- serving --

TEST(ServeTenants, ConservesPerTenantAndShedsLowestWeight) {
  // The tsan-preset case: load generator + brokers hammer the governor's
  // lock-free reads while the control thread Resyncs. Invariants are the
  // same conservation/fairness properties as the simulator, with bounds
  // loose enough for wall-clock jitter.
  ExperimentConfig config = OverloadConfig();
  config.duration_s = 10.0;
  config.runtime.tenants = FlatSloCatalog();
  ServeOptions serve;
  serve.speedup = 10.0;
  serve.broker_threads = 2;

  const ExperimentResult result = RunServeExperiment(config, serve);
  const RunAnalysis& analysis = *result.analysis;
  ASSERT_GT(analysis.Total(), 1000u);
  const std::vector<TenantBreakdown> tenants = analysis.PerTenant();
  ASSERT_EQ(tenants.size(), 3u);

  std::size_t total = 0;
  for (const TenantBreakdown& b : tenants) {
    EXPECT_EQ(b.good + b.dropped, b.total);
    ASSERT_EQ(b.drop_reasons.size(), static_cast<std::size_t>(kNumDropReasons));
    EXPECT_EQ(b.drop_reasons[0], 0u);
    std::size_t reason_sum = 0;
    for (int r = 1; r < kNumDropReasons; ++r) {
      reason_sum += b.drop_reasons[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(reason_sum, b.dropped);
    total += b.total;
  }
  EXPECT_EQ(total, analysis.Total());

  // Under structural overload the shed budget lands on bronze before gold.
  const auto shed_of = [&](int t) {
    return tenants[static_cast<std::size_t>(t)]
        .drop_reasons[static_cast<std::size_t>(DropReason::kTenantShed)];
  };
  EXPECT_GE(shed_of(2), shed_of(0));
}

}  // namespace
}  // namespace pard
