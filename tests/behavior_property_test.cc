// Cross-seed behavioral properties.
//
// Single-seed comparisons can be lucky; these parameterized sweeps assert the
// paper's qualitative claims hold across independent workload seeds:
//   P1: PARD's goodput >= every reactive baseline's.
//   P2: PARD's invalid rate <= the reactive baselines'.
//   P3: PARD-back (no downstream awareness) places more drops in the latter
//       half of the pipeline than PARD.
//   P4: the naive baseline wastes the most computation of all systems.
//   P5: replicated statistics are consistent (mean within [min, max], zero
//       stddev for one replica).
#include <gtest/gtest.h>

#include <algorithm>

#include <string>

#include "harness/experiment.h"

namespace pard {
namespace {

ExperimentConfig SeededConfig(std::uint64_t seed, const std::string& policy) {
  ExperimentConfig c;
  c.app = "lv";
  c.trace = "tweet";
  c.policy = policy;
  c.duration_s = 120.0;
  c.base_rate = 240.0;
  c.seed = seed;
  return c;
}

double LateHalfShare(const ExperimentResult& r) {
  const std::vector<double> share = r.analysis->PerModuleDropShare();
  double late = 0.0;
  for (std::size_t m = share.size() / 2; m < share.size(); ++m) {
    late += share[m];
  }
  return late;
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, PardDominatesReactiveBaselines) {
  const std::uint64_t seed = GetParam();
  const ExperimentResult pard = RunExperiment(SeededConfig(seed, "pard"));
  const ExperimentResult nexus = RunExperiment(SeededConfig(seed, "nexus"));
  const ExperimentResult clipper = RunExperiment(SeededConfig(seed, "clipper++"));
  // P1 (small tolerance: ties can occur when a seed produces no overload).
  EXPECT_GE(pard.analysis->NormalizedGoodput() + 0.01, nexus.analysis->NormalizedGoodput());
  EXPECT_GE(pard.analysis->NormalizedGoodput() + 0.01, clipper.analysis->NormalizedGoodput());
  // P2.
  EXPECT_LE(pard.analysis->InvalidRate(), nexus.analysis->InvalidRate() + 0.01);
  EXPECT_LE(pard.analysis->InvalidRate(), clipper.analysis->InvalidRate() + 0.01);
}

TEST_P(SeedSweepTest, BackwardOnlyDropsLater) {
  const std::uint64_t seed = GetParam();
  const ExperimentResult pard = RunExperiment(SeededConfig(seed, "pard"));
  const ExperimentResult back = RunExperiment(SeededConfig(seed, "pard-back"));
  if (back.analysis->DroppedCount() < 100 || pard.analysis->DroppedCount() < 100) {
    GTEST_SKIP() << "not enough drops at this seed to compare placement";
  }
  // P3.
  EXPECT_GE(LateHalfShare(back) + 0.02, LateHalfShare(pard));
  // Downstream blindness also wastes more computation.
  EXPECT_GE(back.analysis->InvalidRate() + 0.005, pard.analysis->InvalidRate());
}

TEST_P(SeedSweepTest, NaiveWastesTheMostComputation) {
  const std::uint64_t seed = GetParam();
  const ExperimentResult naive = RunExperiment(SeededConfig(seed, "naive"));
  for (const char* policy : {"pard", "nexus", "clipper++"}) {
    const ExperimentResult r = RunExperiment(SeededConfig(seed, policy));
    EXPECT_GE(naive.analysis->InvalidRate() + 0.01, r.analysis->InvalidRate()) << policy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Values(101, 202, 303));

TEST(Replicated, StatisticsConsistent) {
  ExperimentConfig c = SeededConfig(7, "pard");
  c.duration_s = 60.0;
  const ReplicatedResult r = RunReplicated(c, 3);
  EXPECT_EQ(r.replicas, 3);
  EXPECT_GE(r.drop_rate.mean, r.drop_rate.min);
  EXPECT_LE(r.drop_rate.mean, r.drop_rate.max);
  EXPECT_GE(r.drop_rate.stddev, 0.0);
  EXPECT_GE(r.normalized_goodput.min, 0.0);
  EXPECT_LE(r.normalized_goodput.max, 1.0);
}

TEST(Replicated, SingleReplicaHasZeroStddev) {
  ExperimentConfig c = SeededConfig(7, "pard");
  c.duration_s = 40.0;
  const ReplicatedResult r = RunReplicated(c, 1);
  EXPECT_DOUBLE_EQ(r.drop_rate.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.drop_rate.mean, r.drop_rate.min);
  EXPECT_DOUBLE_EQ(r.drop_rate.mean, r.drop_rate.max);
}

TEST(Replicated, MatchesIndividualRuns) {
  ExperimentConfig c = SeededConfig(55, "nexus");
  c.duration_s = 40.0;
  const ReplicatedResult rep = RunReplicated(c, 2);
  const double a = RunExperiment(c).analysis->DropRate();
  ExperimentConfig c2 = c;
  c2.seed = 56;
  const double b = RunExperiment(c2).analysis->DropRate();
  EXPECT_NEAR(rep.drop_rate.mean, (a + b) / 2.0, 1e-12);
  EXPECT_NEAR(rep.drop_rate.min, std::min(a, b), 1e-12);
  EXPECT_NEAR(rep.drop_rate.max, std::max(a, b), 1e-12);
}

TEST(Replicated, RejectsZeroReplicas) {
  EXPECT_THROW(RunReplicated(SeededConfig(1, "pard"), 0), CheckError);
}

}  // namespace
}  // namespace pard
