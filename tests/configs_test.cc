// The shipped JSON pipeline configs in configs/ must load, validate, and
// match the built-in app definitions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pipeline/apps.h"
#include "pipeline/pipeline_spec.h"
#include "pipeline/tenant_spec.h"

namespace pard {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Test binaries run from the build tree; configs live in the source tree.
std::string ConfigPath(const std::string& name) {
  return std::string(PARD_SOURCE_DIR) + "/configs/" + name;
}

struct ConfigCase {
  const char* file;
  const char* app;
};

class ConfigsTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigsTest, LoadsAndMatchesBuiltin) {
  const ConfigCase& c = GetParam();
  const PipelineSpec loaded = PipelineSpec::FromJsonText(ReadFile(ConfigPath(c.file)));
  const PipelineSpec builtin = MakeApp(c.app);
  EXPECT_EQ(loaded.app_name(), builtin.app_name());
  EXPECT_EQ(loaded.slo(), builtin.slo());
  ASSERT_EQ(loaded.NumModules(), builtin.NumModules());
  for (int i = 0; i < builtin.NumModules(); ++i) {
    EXPECT_EQ(loaded.Module(i).model, builtin.Module(i).model) << c.file << " module " << i;
    EXPECT_EQ(loaded.Module(i).pres, builtin.Module(i).pres);
    EXPECT_EQ(loaded.Module(i).subs, builtin.Module(i).subs);
  }
  // Backend catalogs (speed grades, cold starts, per-model scales) must
  // round-trip exactly, including their absence.
  ASSERT_EQ(loaded.backends().size(), builtin.backends().size()) << c.file;
  for (std::size_t i = 0; i < builtin.backends().size(); ++i) {
    EXPECT_EQ(loaded.backends()[i], builtin.backends()[i]) << c.file << " backend " << i;
  }
}

// The shipped tenant catalog must parse, validate, and round-trip the
// reference mix exactly (same discipline as the pipeline specs).
TEST(TenantCatalogConfig, TenantsMixedRoundTrips) {
  const std::vector<TenantSpec> loaded =
      ParseTenantCatalogText(ReadFile(ConfigPath("tenants_mixed.json")));
  const std::vector<TenantSpec> reference = MakeReferenceTenantCatalog();
  ASSERT_EQ(loaded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(loaded[i], reference[i]) << "tenant " << i;
  }
  // Serializing the loaded catalog must reproduce the file byte-for-byte
  // (dump_configs wrote it with Dump(2) + trailing newline).
  EXPECT_EQ(TenantCatalogToJson(loaded).Dump(2) + "\n",
            ReadFile(ConfigPath("tenants_mixed.json")));
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigsTest,
                         ::testing::Values(ConfigCase{"traffic_monitoring.json", "tm"},
                                           ConfigCase{"live_video.json", "lv"},
                                           ConfigCase{"game_analysis.json", "gm"},
                                           ConfigCase{"dag_live_video.json", "da"},
                                           ConfigCase{"hetero_live_video.json", "lvhet"}),
                         [](const ::testing::TestParamInfo<ConfigCase>& info) {
                           return std::string(info.param.app);
                         });

}  // namespace
}  // namespace pard
