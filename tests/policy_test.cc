#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/clipper_policy.h"
#include "baselines/nexus_policy.h"
#include "baselines/overload_control_policy.h"
#include "baselines/policy_factory.h"
#include "common/check.h"
#include "core/pard_policy.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"
#include "runtime/state_board.h"

namespace pard {
namespace {

Request MakeRequest(SimTime sent, Duration slo) {
  Request r;
  r.id = 1;
  r.sent = sent;
  r.slo = slo;
  r.deadline = sent + slo;
  r.hops.resize(8);
  r.merge_arrivals.assign(8, 0);
  return r;
}

AdmissionContext MakeContext(const Request& req, int module_id, SimTime now,
                             SimTime batch_start, Duration batch_duration) {
  AdmissionContext ctx;
  ctx.request = &req;
  ctx.module_id = module_id;
  ctx.now = now;
  ctx.batch_start = batch_start;
  ctx.batch_duration = batch_duration;
  ctx.batch_size = 4;
  return ctx;
}

StateBoard QuietBoard(const PipelineSpec& spec, Duration d = 10 * kUsPerMs) {
  StateBoard board(spec.NumModules());
  for (int i = 0; i < spec.NumModules(); ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    s.batch_size = 4;
    s.load_factor = 0.5;
    board.Publish(std::move(s));
  }
  return board;
}

// ---- Nexus ---------------------------------------------------------------------

TEST(NexusPolicy, KeepsWhenCurrentModuleFits) {
  NexusPolicy policy;
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  policy.Bind(&lv, &board);
  const Request req = MakeRequest(0, MsToUs(500));
  // batch ends at 100ms + 10ms execution = 110ms << 500ms: keep, even though
  // four more modules follow (the reactive blindness the paper critiques).
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 0, MsToUs(90), MsToUs(100), 10 * kUsPerMs)));
}

TEST(NexusPolicy, DropsWhenCurrentModuleAloneBusts) {
  NexusPolicy policy;
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  policy.Bind(&lv, &board);
  const Request req = MakeRequest(0, MsToUs(500));
  EXPECT_TRUE(policy.ShouldDrop(MakeContext(req, 0, MsToUs(495), MsToUs(495), 10 * kUsPerMs)));
}

TEST(NexusPolicy, UsesArrivalOrder) {
  NexusPolicy policy;
  EXPECT_EQ(policy.ChoosePopSide(0, 0), PopSide::kOldest);
}

// ---- Clipper++ -------------------------------------------------------------------

TEST(ClipperPolicy, DropsOnlyAfterCumulativeBudgetExceeded) {
  ClipperPlusPolicy policy;
  const PipelineSpec tm = MakeTrafficMonitoring();
  StateBoard board = QuietBoard(tm);
  policy.Bind(&tm, &board);
  const std::vector<Duration> budgets = CumulativeSplitBudgets(tm, PlanBatchSizes(tm));
  const Request req = MakeRequest(0, tm.slo());
  // Just inside module 0's cumulative budget: keep.
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 0, budgets[0] - 1, budgets[0] - 1, 1000)));
  // Just past it: drop — even though the end-to-end SLO still has room.
  EXPECT_TRUE(policy.ShouldDrop(MakeContext(req, 0, budgets[0] + 1, budgets[0] + 1, 1000)));
  // The same elapsed time at a later module is fine (bigger cumulative budget).
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 2, budgets[0] + 1, budgets[0] + 1, 1000)));
}

// ---- Overload control (PARD-oc) -----------------------------------------------------

TEST(OverloadControlPolicy, ShedsWhenQueueDelayAboveThreshold) {
  OverloadControlOptions options;
  options.queue_threshold = 20 * kUsPerMs;
  options.alpha = 1.0;  // Shed everything while overloaded, deterministically.
  OverloadControlPolicy policy(options);
  const PipelineSpec tm = MakeTrafficMonitoring();
  StateBoard board = QuietBoard(tm);
  policy.Bind(&tm, &board);
  const Request req = MakeRequest(0, tm.slo());
  EXPECT_TRUE(policy.AdmitAtModule(req, 1, 0));  // Not overloaded.
  ModuleState overloaded;
  overloaded.module_id = 1;
  overloaded.avg_queue_delay = 25.0 * kUsPerMs;
  board.Publish(std::move(overloaded));
  EXPECT_FALSE(policy.AdmitAtModule(req, 1, 0));  // Module itself sheds.
  EXPECT_FALSE(policy.AdmitAtModule(req, 0, 0));  // Ingress sheds for it.
  EXPECT_TRUE(policy.AdmitAtModule(req, 2, 0));   // Other modules unaffected.
}

TEST(OverloadControlPolicy, NeverDropsAtBroker) {
  OverloadControlPolicy policy;
  const PipelineSpec tm = MakeTrafficMonitoring();
  StateBoard board = QuietBoard(tm);
  policy.Bind(&tm, &board);
  const Request req = MakeRequest(0, tm.slo());
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 0, 0, 0, 1000)));
}

// ---- PARD ------------------------------------------------------------------------

TEST(PardPolicy, ProactivelyDropsForDownstreamBudget) {
  PardOptions options;
  options.estimator.mc_samples = 4000;
  PardPolicy policy(options);
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv, 10 * kUsPerMs);
  policy.Bind(&lv, &board);
  const Request req = MakeRequest(0, MsToUs(500));
  // At module 0 with 440ms already burned: 4 downstream modules need ~40ms+
  // of exec alone, so PARD drops where Nexus (current-module-only) keeps.
  const AdmissionContext ctx =
      MakeContext(req, 0, MsToUs(440), MsToUs(440), 10 * kUsPerMs);
  EXPECT_TRUE(policy.ShouldDrop(ctx));
  NexusPolicy nexus;
  nexus.Bind(&lv, &board);
  EXPECT_FALSE(nexus.ShouldDrop(ctx));
}

TEST(PardPolicy, KeepsWhenBudgetSuffices) {
  PardPolicy policy;
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv, 10 * kUsPerMs);
  policy.Bind(&lv, &board);
  const Request req = MakeRequest(0, MsToUs(500));
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 0, MsToUs(10), MsToUs(10), 10 * kUsPerMs)));
}

TEST(PardPolicy, BackwardOnlyMatchesNexusPredicate) {
  PardOptions options;
  options.backward_only = true;
  PardPolicy policy(options);
  NexusPolicy nexus;
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  policy.Bind(&lv, &board);
  nexus.Bind(&lv, &board);
  const Request req = MakeRequest(0, MsToUs(500));
  for (SimTime t : {MsToUs(100), MsToUs(300), MsToUs(480), MsToUs(495)}) {
    const AdmissionContext ctx = MakeContext(req, 0, t, t, 10 * kUsPerMs);
    EXPECT_EQ(policy.ShouldDrop(ctx), nexus.ShouldDrop(ctx)) << t;
  }
}

TEST(PardPolicy, AdaptiveOrderFollowsLoadFactor) {
  PardPolicy policy;
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  policy.Bind(&lv, &board);
  // Initial mode: LBF.
  EXPECT_EQ(policy.ChoosePopSide(0, 0), PopSide::kMinBudget);
  // Publish overload on module 0 and sync.
  ModuleState hot;
  hot.module_id = 0;
  hot.load_factor = 1.8;
  hot.burstiness = 0.1;
  board.Publish(std::move(hot));
  policy.OnSync(SecToUs(1));
  EXPECT_EQ(policy.ChoosePopSide(0, SecToUs(1)), PopSide::kMaxBudget);
  // Other modules unchanged.
  EXPECT_EQ(policy.ChoosePopSide(1, SecToUs(1)), PopSide::kMinBudget);
}

TEST(PardPolicy, FixedOrderVariants) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  PardOptions fcfs;
  fcfs.order = PardOptions::Order::kFcfs;
  PardPolicy p_fcfs(fcfs);
  p_fcfs.Bind(&lv, &board);
  EXPECT_EQ(p_fcfs.ChoosePopSide(0, 0), PopSide::kOldest);
  PardOptions hbf;
  hbf.order = PardOptions::Order::kHbf;
  PardPolicy p_hbf(hbf);
  p_hbf.Bind(&lv, &board);
  EXPECT_EQ(p_hbf.ChoosePopSide(0, 0), PopSide::kMaxBudget);
  PardOptions lbf;
  lbf.order = PardOptions::Order::kLbf;
  PardPolicy p_lbf(lbf);
  p_lbf.Bind(&lv, &board);
  EXPECT_EQ(p_lbf.ChoosePopSide(0, 0), PopSide::kMinBudget);
}

TEST(PardPolicy, StaticSplitUsesCumulativeBudgets) {
  PardOptions options;
  options.budget_scope = PardOptions::BudgetScope::kStaticSplit;
  PardPolicy policy(options);
  const PipelineSpec tm = MakeTrafficMonitoring();
  StateBoard board = QuietBoard(tm);
  policy.Bind(&tm, &board);
  const std::vector<Duration> budgets = CumulativeSplitBudgets(tm, PlanBatchSizes(tm));
  const Request req = MakeRequest(0, tm.slo());
  const Duration d = 10 * kUsPerMs;
  // Finishing inside module 0's cumulative budget: keep.
  EXPECT_FALSE(policy.ShouldDrop(MakeContext(req, 0, 0, budgets[0] - d - 1, d)));
  // Finishing beyond it: drop (proactive within the module, unlike Clipper).
  EXPECT_TRUE(policy.ShouldDrop(MakeContext(req, 0, 0, budgets[0] - d + 1, d)));
}

TEST(PardPolicy, WclSplitReactsToRuntimeWorstCase) {
  PardOptions options;
  options.budget_scope = PardOptions::BudgetScope::kWclSplit;
  PardPolicy policy(options);
  const PipelineSpec tm = MakeTrafficMonitoring();
  StateBoard board = QuietBoard(tm);
  policy.Bind(&tm, &board);
  const Request req = MakeRequest(0, tm.slo());
  const Duration d = 10 * kUsPerMs;
  const AdmissionContext at_m0 = MakeContext(req, 0, 0, MsToUs(250), d);

  // Sink module dominates the runtime worst case: nearly the whole SLO is
  // reallocated to it, module 0's cumulative budget collapses, and the
  // 250 ms decision is dropped.
  ModuleState sink_heavy;
  sink_heavy.module_id = 2;
  sink_heavy.batch_duration = d;
  sink_heavy.worst_stage_latency = 300.0 * kUsPerMs;
  board.Publish(std::move(sink_heavy));
  policy.OnSync(SecToUs(1));
  EXPECT_TRUE(policy.ShouldDrop(at_m0));

  // Flip the bottleneck to module 0: its budget expands and the same
  // decision is now kept — budgets follow the runtime WCL.
  ModuleState sink_calm;
  sink_calm.module_id = 2;
  sink_calm.batch_duration = d;
  board.Publish(std::move(sink_calm));
  ModuleState front_heavy;
  front_heavy.module_id = 0;
  front_heavy.batch_duration = d;
  front_heavy.worst_stage_latency = 300.0 * kUsPerMs;
  board.Publish(std::move(front_heavy));
  policy.OnSync(SecToUs(2));
  EXPECT_FALSE(policy.ShouldDrop(at_m0));
}

// ---- Factory ----------------------------------------------------------------------

TEST(PolicyFactory, BuildsEveryName) {
  for (const std::string& name : AllPolicyNames()) {
    const auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->Name(), name);
  }
}

TEST(PolicyFactory, UnknownNameThrows) { EXPECT_THROW(MakePolicy("bogus"), CheckError); }

TEST(PolicyFactory, AblationListCoversTable1) {
  const auto names = AblationPolicyNames();
  EXPECT_EQ(names.size(), 12u);
  for (const std::string& name : names) {
    EXPECT_NO_THROW(MakePolicy(name)) << name;
  }
}

TEST(PolicyFactory, LambdaParameterReachesEstimator) {
  PolicyParams params;
  params.lambda = 0.42;
  const auto policy = MakePolicy("pard", params);
  auto* pard = dynamic_cast<PardPolicy*>(policy.get());
  ASSERT_NE(pard, nullptr);
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  pard->Bind(&lv, &board);
  EXPECT_DOUBLE_EQ(pard->estimator()->options().lambda, 0.42);
}

TEST(PolicyFactory, McSamplesParameterReachesEstimator) {
  PolicyParams params;
  params.mc_samples = 64;
  const auto policy = MakePolicy("pard-upper", params);
  auto* pard = dynamic_cast<PardPolicy*>(policy.get());
  ASSERT_NE(pard, nullptr);
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = QuietBoard(lv);
  pard->Bind(&lv, &board);
  EXPECT_EQ(pard->estimator()->options().mc_samples, 64);
}

}  // namespace
}  // namespace pard
