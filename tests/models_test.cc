#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "models/model_profile.h"
#include "models/profiler.h"
#include "models/registry.h"

namespace pard {
namespace {

TEST(ModelProfile, LinearDurations) {
  const ModelProfile p = ModelProfile::Linear("m", 1000, 500, 8);
  EXPECT_EQ(p.MaxBatch(), 8);
  EXPECT_EQ(p.BatchDuration(1), 1500);
  EXPECT_EQ(p.BatchDuration(4), 3000);
}

TEST(ModelProfile, BatchClamped) {
  const ModelProfile p = ModelProfile::Linear("m", 1000, 500, 4);
  EXPECT_EQ(p.BatchDuration(0), p.BatchDuration(1));
  EXPECT_EQ(p.BatchDuration(99), p.BatchDuration(4));
}

TEST(ModelProfile, ThroughputGrowsWithBatch) {
  const ModelProfile p = ModelProfile::Linear("m", 10000, 1000, 16);
  // Fixed cost amortizes: throughput strictly increases for a linear model.
  EXPECT_GT(p.Throughput(8), p.Throughput(1));
  EXPECT_NEAR(p.Throughput(1), 1.0 / UsToSec(11000), 1e-6);
}

TEST(ModelProfile, LargestFeasibleBatchRespectsBudget) {
  const ModelProfile p = ModelProfile::Linear("m", 10 * kUsPerMs, 2 * kUsPerMs, 32);
  // 2*d(b) <= 100ms -> d(b) <= 50ms -> 10+2b <= 50 -> b <= 20.
  EXPECT_EQ(p.LargestFeasibleBatch(100 * kUsPerMs), 20);
  // Impossible budget still returns at least 1.
  EXPECT_EQ(p.LargestFeasibleBatch(1), 1);
}

TEST(ModelProfile, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(ModelProfile("m", {}), CheckError);
  EXPECT_THROW(ModelProfile("m", {0}), CheckError);
}

TEST(ModelProfile, JsonRoundTrip) {
  const ModelProfile p = ModelProfile::Linear("face_recognition", 8000, 3000, 16);
  const ModelProfile q = ModelProfile::FromJson(p.ToJson());
  EXPECT_EQ(q.name(), "face_recognition");
  EXPECT_EQ(q.MaxBatch(), 16);
  for (int b = 1; b <= 16; ++b) {
    EXPECT_EQ(q.BatchDuration(b), p.BatchDuration(b));
  }
}

TEST(ProfileRegistry, ContainsPaperModels) {
  for (const char* name :
       {"object_detection", "face_recognition", "text_recognition", "person_detection",
        "expression_recognition", "eye_tracking", "pose_recognition", "kill_count_detection",
        "alive_player_recognition", "health_value_recognition", "icon_recognition"}) {
    EXPECT_TRUE(ProfileRegistry::Contains(name)) << name;
    EXPECT_GT(ProfileRegistry::Get(name).BatchDuration(1), 0);
  }
  EXPECT_EQ(ProfileRegistry::Names().size(), 11u);
}

TEST(ProfileRegistry, UnknownModelThrows) {
  EXPECT_FALSE(ProfileRegistry::Contains("does_not_exist"));
  EXPECT_THROW(ProfileRegistry::Get("does_not_exist"), CheckError);
}

TEST(ProfileRegistry, ProfilesAreMonotoneInBatch) {
  for (const std::string& name : ProfileRegistry::Names()) {
    const ModelProfile& p = ProfileRegistry::Get(name);
    for (int b = 2; b <= p.MaxBatch(); ++b) {
      EXPECT_GE(p.BatchDuration(b), p.BatchDuration(b - 1)) << name << " batch " << b;
    }
  }
}

TEST(OfflineProfiler, RecoversTruthWithinNoise) {
  ProfilerOptions options;
  options.max_batch = 16;
  options.noise = 0.02;
  OfflineProfiler profiler(options, Rng(3));
  const ModelProfile p =
      profiler.Profile("m", [](int b) { return 5000 + 1000 * static_cast<Duration>(b); });
  for (int b = 1; b <= 16; ++b) {
    const double truth = 5000.0 + 1000.0 * b;
    EXPECT_NEAR(static_cast<double>(p.BatchDuration(b)), truth, truth * 0.05) << "b=" << b;
  }
}

TEST(OfflineProfiler, OutputIsMonotone) {
  ProfilerOptions options;
  options.max_batch = 32;
  options.noise = 0.2;  // Heavy noise would break monotonicity without the fixup.
  OfflineProfiler profiler(options, Rng(4));
  const ModelProfile p =
      profiler.Profile("m", [](int b) { return 2000 + 100 * static_cast<Duration>(b); });
  for (int b = 2; b <= 32; ++b) {
    EXPECT_GE(p.BatchDuration(b), p.BatchDuration(b - 1));
  }
}

TEST(OfflineProfiler, Deterministic) {
  ProfilerOptions options;
  OfflineProfiler a(options, Rng(9));
  OfflineProfiler b(options, Rng(9));
  const auto fn = [](int batch) { return 1000 * static_cast<Duration>(batch); };
  const ModelProfile pa = a.Profile("m", fn);
  const ModelProfile pb = b.Profile("m", fn);
  for (int batch = 1; batch <= options.max_batch; ++batch) {
    EXPECT_EQ(pa.BatchDuration(batch), pb.BatchDuration(batch));
  }
}

TEST(OfflineProfiler, RejectsNonPositiveLatency) {
  OfflineProfiler profiler(ProfilerOptions{}, Rng(1));
  EXPECT_THROW(profiler.Profile("m", [](int) { return Duration{0}; }), CheckError);
}

}  // namespace
}  // namespace pard
