// Kernel-equivalence goldens (ISSUE 3): the slab/timer-wheel event kernel,
// the epoch-cached estimator, the compacting RequestQueue and the request
// arena are pure performance work — every run must stay bit-identical to the
// pre-refactor kernel. The expected values below were harvested from the
// pre-refactor build (PR 2 tree, commit 0a4ce21) on the fig08/fig14a smoke
// configurations plus DAG-dynamic and sharded variants; doubles are compared
// exactly (printed and re-parsed at %.17g, which round-trips).
//
// If an intentional behavior change ever invalidates these numbers, re-run
// the configs below and update the table in the same commit, explaining why
// bit-identity was allowed to break.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"
#include "trace/rate_function.h"

namespace pard {
namespace {

struct Golden {
  const char* name;
  std::size_t total;
  std::size_t good;
  std::size_t dropped;
  double drop_rate;
  double invalid_rate;
  double mean_goodput;
  double normalized_goodput;
};

constexpr Golden kGoldens[] = {
    {"fig08-smoke-pard", 38u, 38u, 0u, 0, 0, 25.729150585947551, 1},
    {"fig08-smoke-nexus", 38u, 38u, 0u, 0, 0, 25.729150585947551, 1},
    {"fig14a-smoke-pard", 1485u, 1328u, 157u, 0.10572390572390572, 0, 567.00960500607994,
     0.89427609427609422},
    {"fig14a-smoke-clipper", 1485u, 1071u, 414u, 0.27878787878787881, 0.049918674253622577,
     458.48387814859842, 0.72121212121212119},
    {"fig14a-smoke-pard-jitter", 1485u, 1329u, 156u, 0.10505050505050505, 0, 572.42291242230942,
     0.89494949494949494},
    {"dag-dynamic-pard-path", 81u, 81u, 0u, 0, 0, 54.527609146097639, 1},
    {"sharded-lv-pard", 2524u, 2524u, 0u, 0, 0, 83.872356110061276, 1},
};

void ExpectGolden(const Golden& golden, const ExperimentResult& result) {
  const RunAnalysis& a = *result.analysis;
  EXPECT_EQ(a.Total(), golden.total) << golden.name;
  EXPECT_EQ(a.GoodCount(), golden.good) << golden.name;
  EXPECT_EQ(a.DroppedCount(), golden.dropped) << golden.name;
  // Exact comparisons on purpose: "close" would hide nondeterminism.
  EXPECT_EQ(a.DropRate(), golden.drop_rate) << golden.name;
  EXPECT_EQ(a.InvalidRate(), golden.invalid_rate) << golden.name;
  EXPECT_EQ(a.MeanGoodput(), golden.mean_goodput) << golden.name;
  EXPECT_EQ(a.NormalizedGoodput(), golden.normalized_goodput) << golden.name;
}

const Golden& Find(const std::string& name) {
  for (const Golden& g : kGoldens) {
    if (name == g.name) {
      return g;
    }
  }
  ADD_FAILURE() << "no golden named " << name;
  return kGoldens[0];
}

// The fig08 smoke configuration (StdConfig shape at CI-smoke scale).
ExperimentConfig Fig08Smoke(const std::string& policy) {
  ExperimentConfig c;
  c.app = "lv";
  c.trace = "tweet";
  c.policy = policy;
  c.duration_s = 1.5;
  c.base_rate = 40.0;
  c.seed = 7;
  c.provision_factor = 1.25;
  c.runtime.enable_scaling = true;
  c.runtime.scaling_epoch = 5 * kUsPerSec;
  return c;
}

// The fig14a stress shape: fixed instances, constant offered rate past
// capacity — the regime where the estimator actually drops requests.
ExperimentConfig Fig14aSmoke(const std::string& policy) {
  const PipelineSpec spec = MakeLiveVideo();
  const std::vector<int> batches = PlanBatchSizes(spec);
  ExperimentConfig c;
  c.custom_spec = spec;
  c.custom_trace = RateFunction::Constant(750.0);
  c.trace = "constant";
  c.policy = policy;
  c.duration_s = 2.0;
  c.seed = 17;
  c.runtime.fixed_workers = PlanWorkers(spec, batches, 600.0, 1.0, 32, 64);
  return c;
}

TEST(GoldenDeterminism, Fig08SmokePard) {
  ExpectGolden(Find("fig08-smoke-pard"), RunExperiment(Fig08Smoke("pard")));
}

TEST(GoldenDeterminism, Fig08SmokeNexus) {
  ExpectGolden(Find("fig08-smoke-nexus"), RunExperiment(Fig08Smoke("nexus")));
}

TEST(GoldenDeterminism, Fig14aSmokePard) {
  ExpectGolden(Find("fig14a-smoke-pard"), RunExperiment(Fig14aSmoke("pard")));
}

TEST(GoldenDeterminism, Fig14aSmokeClipper) {
  ExpectGolden(Find("fig14a-smoke-clipper"), RunExperiment(Fig14aSmoke("clipper++")));
}

TEST(GoldenDeterminism, Fig14aSmokePardWithExecJitter) {
  ExperimentConfig c = Fig14aSmoke("pard");
  c.runtime.exec_jitter = 0.05;
  ExpectGolden(Find("fig14a-smoke-pard-jitter"), RunExperiment(c));
}

TEST(GoldenDeterminism, DagDynamicPathPrediction) {
  ExperimentConfig c;
  c.app = "da";
  c.trace = "wiki";
  c.policy = "pard-path";
  c.duration_s = 1.5;
  c.base_rate = 40.0;
  c.seed = 7;
  c.runtime.dynamic_paths = true;
  ExpectGolden(Find("dag-dynamic-pard-path"), RunExperiment(c));
}

// ISSUE 5 heterogeneity refactor: a homogeneous grade-1.0 fleet must be
// bit-identical to the pre-refactor kernel even when the catalog is spelled
// out explicitly — the backend-profile layer may not perturb a single
// decision, timestamp or RNG draw of the historical configurations.
TEST(GoldenDeterminism, ExplicitBaselineCatalogIsBitIdenticalOnFig08) {
  ExperimentConfig c = Fig08Smoke("pard");
  PipelineSpec spec = MakeApp("lv");
  spec.set_backends({BackendProfile{}});  // One explicit grade-1.0 profile.
  c.custom_spec = std::move(spec);
  ExpectGolden(Find("fig08-smoke-pard"), RunExperiment(c));
}

TEST(GoldenDeterminism, TwoIdenticalBaselineProfilesAreBitIdenticalUnderJitter) {
  // Round-robin over two *identical* baseline profiles is the same fleet;
  // the jitter config additionally pins the per-module RNG draw sequence.
  ExperimentConfig c = Fig14aSmoke("pard");
  c.runtime.exec_jitter = 0.05;
  PipelineSpec spec = MakeLiveVideo();
  BackendProfile a;
  a.name = "a";
  BackendProfile b;
  b.name = "b";
  spec.set_backends({a, b});
  c.custom_spec = std::move(spec);
  ExpectGolden(Find("fig14a-smoke-pard-jitter"), RunExperiment(c));
}

TEST(GoldenDeterminism, ExplicitBaselineCatalogIsBitIdenticalOnDynamicDag) {
  ExperimentConfig c;
  c.app = "da";
  c.trace = "wiki";
  c.policy = "pard-path";
  c.duration_s = 1.5;
  c.base_rate = 40.0;
  c.seed = 7;
  c.runtime.dynamic_paths = true;
  PipelineSpec spec = MakeApp("da");
  spec.set_backends({BackendProfile{}});
  c.custom_spec = std::move(spec);
  ExpectGolden(Find("dag-dynamic-pard-path"), RunExperiment(c));
}

TEST(GoldenDeterminism, ShardedRunMatchesPreRefactorKernel) {
  ExperimentConfig c;
  c.app = "lv";
  c.trace = "tweet";
  c.policy = "pard";
  c.duration_s = 30.0;
  c.base_rate = 50.0;
  c.seed = 7;
  ExpectGolden(Find("sharded-lv-pard"), RunShardedExperiment(c, 4, 2));
}

}  // namespace
}  // namespace pard
