// Pins the event kernel's zero-allocation guarantee: once the slab, free
// list and bucket structures reach their high-water mark, scheduling,
// cancelling and firing events must not touch the heap (ISSUE 3 acceptance).
//
// The whole test binary counts global operator new calls; the steady-state
// section asserts the counter does not move. Keep this suite out of
// sanitizer presets — ASan/TSan own the allocator there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/simulation.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replaced operators pair std::malloc with std::free consistently; GCC's
// -Wmismatched-new-delete heuristic cannot see through the replacement.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pard {
namespace {

// One steady-state round: schedule two events (32-byte capture, like the
// runtime's delivery lambdas), cancel one, fire one. Pending depth stays at
// `depth`, so a warmed kernel must serve the whole round from the slab.
void Churn(Simulation& sim, std::vector<EventId>& ring, std::size_t& head, SimTime& horizon,
           std::uint64_t& sink, int rounds) {
  struct Payload {
    std::uint64_t* sink;
    std::uint64_t a, b, c;
  };
  const Payload payload{&sink, 1, 2, 3};
  for (int i = 0; i < rounds; ++i) {
    horizon += 7;
    sim.ScheduleAt(horizon, [payload] { *payload.sink += payload.a; });
    const EventId doomed = sim.ScheduleAt(horizon, [payload] { *payload.sink += payload.b; });
    sim.Cancel(ring[head]);
    ring[head] = doomed;
    head = (head + 1) % ring.size();
    sim.Step();
  }
}

TEST(SimulationAllocation, SteadyStateEventLoopIsAllocationFree) {
  Simulation sim;
  constexpr int kDepth = 512;
  std::uint64_t sink = 0;
  SimTime horizon = 0;
  std::vector<EventId> ring(kDepth, 0);
  std::size_t head = 0;
  for (int i = 0; i < kDepth; ++i) {
    horizon += 7;
    sim.ScheduleAt(horizon, [&sink] { ++sink; });
    ring[static_cast<std::size_t>(i)] = sim.ScheduleAt(horizon, [&sink] { ++sink; });
  }
  // Warm-up: let the slab, free list and internal vectors reach their
  // high-water mark for this working set.
  Churn(sim, ring, head, horizon, sink, 4 * kDepth);

  const std::uint64_t before = g_allocations.load();
  Churn(sim, ring, head, horizon, sink, 8 * kDepth);
  const std::uint64_t after = g_allocations.load();

  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/cancel/fire performed heap allocations";
  EXPECT_GT(sink, 0u);
}

TEST(SimulationAllocation, InlineCallbackHoldsRuntimeSizedCaptures) {
  // The runtime's largest capture (shared_ptr + scalars + this) must fit the
  // inline buffer, or every Deliver() would allocate.
  struct DeliverSized {
    void* runtime;
    std::shared_ptr<int> req;
    int module_id;
    void operator()() {}
  };
  static_assert(sizeof(DeliverSized) <= InlineCallback::kInlineSize,
                "runtime delivery capture must stay inline");

  Simulation sim;
  auto payload = std::make_shared<int>(7);
  // Warm the slab so the measured schedule reuses a freed slot.
  for (int i = 0; i < 4; ++i) {
    sim.ScheduleAt(i + 1, DeliverSized{nullptr, payload, i});
  }
  sim.Run();
  const std::uint64_t before = g_allocations.load();
  sim.ScheduleAt(10, DeliverSized{nullptr, payload, 4});
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "inline-sized callback construction allocated";
  sim.Run();
}

}  // namespace
}  // namespace pard
