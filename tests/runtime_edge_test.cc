// Edge-case coverage for the serving runtime: DAG drop interactions, invalid
// accounting across branches, state-board staleness, network delay, and
// queue-order consequences.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/naive_policy.h"
#include "baselines/nexus_policy.h"
#include "common/rng.h"
#include "metrics/analysis.h"
#include "pipeline/apps.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace pard {
namespace {

RuntimeOptions FixedWorkers(std::vector<int> workers, Duration network_delay = 500) {
  RuntimeOptions o;
  o.fixed_workers = std::move(workers);
  o.network_delay = network_delay;
  return o;
}

// Drops requests at a chosen module, but only for decisions taken after a
// cutoff time (so sibling DAG branches get a chance to run first).
class DropAtModulePolicy : public DropPolicy {
 public:
  DropAtModulePolicy(int module_id, SimTime after = 0)
      : module_id_(module_id), after_(after) {}
  bool ShouldDrop(const AdmissionContext& ctx) override {
    return ctx.module_id == module_id_ && ctx.now >= after_;
  }
  std::string Name() const override { return "drop-at-module"; }

 private:
  int module_id_;
  SimTime after_;
};

TEST(DagRuntime, DropOnOneBranchInvalidatesSiblingWork) {
  // The pose branch (module 1) has one backlogged worker while the face
  // branch (module 2) has four; requests reaching the pose broker after
  // 100 ms are dropped there, by which time the face branch has already
  // executed them — wasted sibling computation, the DAG effect the paper
  // quantifies in §5.2.
  DropAtModulePolicy policy(1, MsToUs(100));
  // Pose (module 1) is the bottleneck: its broker decisions lag the face
  // branch's execution, so drops there strand completed face work.
  PipelineRuntime rt(MakeDagLiveVideo(), FixedWorkers({4, 1, 4, 2, 2}), &policy, 20.0);
  rt.RunTrace(GenerateUniformArrivals(800.0, 0, SecToUs(2)));
  std::size_t wasted_sibling = 0;
  for (const RequestPtr& r : rt.requests()) {
    if (r->fate == RequestFate::kDropped && r->drop_module == 1) {
      EXPECT_FALSE(r->hops[1].executed);
      EXPECT_FALSE(r->hops[3].executed);  // Merge never ran.
      if (r->hops[2].executed) {
        EXPECT_GT(r->hops[2].gpu_time, 0);
        ++wasted_sibling;
      }
    }
  }
  EXPECT_GT(wasted_sibling, 10u);
}

TEST(DagRuntime, DropAtMergeStopsSink) {
  DropAtModulePolicy policy(3);
  PipelineRuntime rt(MakeDagLiveVideo(), FixedWorkers({1, 1, 1, 1, 1}), &policy, 20.0);
  rt.RunTrace({0});
  const RequestPtr& r = rt.requests()[0];
  EXPECT_EQ(r->fate, RequestFate::kDropped);
  EXPECT_EQ(r->drop_module, 3);
  EXPECT_TRUE(r->hops[1].executed);
  EXPECT_TRUE(r->hops[2].executed);
  EXPECT_FALSE(r->hops[4].executed);
}

TEST(NetworkDelay, AccumulatesPerHop) {
  NaivePolicy policy;
  const Duration delay = 3 * kUsPerMs;
  PipelineRuntime rt(MakeTrafficMonitoring(), FixedWorkers({1, 1, 1}, delay), &policy, 10.0);
  rt.RunTrace({0});
  const RequestPtr& r = rt.requests()[0];
  EXPECT_EQ(r->hops[0].arrive, delay);  // Client -> M1.
  EXPECT_EQ(r->hops[1].arrive, r->hops[0].exec_end + delay);
  EXPECT_EQ(r->hops[2].arrive, r->hops[1].exec_end + delay);
}

TEST(StateBoard, SyncPublishesFreshStates) {
  NaivePolicy policy;
  RuntimeOptions options = FixedWorkers({1, 1, 1});
  PipelineRuntime rt(MakeTrafficMonitoring(), options, &policy, 100.0);
  // Before any sync tick, board states are defaults.
  EXPECT_EQ(rt.board().Get(0).updated_at, 0);
  Rng rng(3);
  const auto arrivals = GenerateArrivals(RateFunction::Constant(100.0), 0, SecToUs(4), rng);
  for (SimTime t : arrivals) {
    rt.ScheduleArrival(t);
  }
  rt.Run(SecToUs(3));
  const ModuleState& state = rt.board().Get(0);
  EXPECT_GT(state.updated_at, 0);
  EXPECT_GT(state.input_rate, 30.0);
  EXPECT_GT(state.per_worker_throughput, 0.0);
  EXPECT_FALSE(state.wait_samples.empty());
  // Staleness: the snapshot is at most one sync period old.
  EXPECT_GE(state.updated_at, rt.sim().Now() - options.sync_period);
}

TEST(StateBoard, LoadFactorReflectsOverload) {
  NaivePolicy policy;
  PipelineRuntime rt(MakeTrafficMonitoring(), FixedWorkers({1, 1, 1}), &policy, 50.0);
  // Offer far beyond one worker's capacity and check mu > 1 after syncs.
  Rng rng(5);
  const auto arrivals =
      GenerateArrivals(RateFunction::Constant(1200.0), 0, SecToUs(6), rng);
  for (SimTime t : arrivals) {
    rt.ScheduleArrival(t);
  }
  rt.Run(SecToUs(5));
  EXPECT_GT(rt.board().Get(0).load_factor, 1.0);
}

TEST(QueueOrder, FifoServesInArrivalOrderUnderBacklog) {
  NexusPolicy policy;  // FIFO pops.
  // Long SLO so nothing drops; single worker; burst of simultaneous work.
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  const PipelineSpec spec("fifo", SecToUs(60), {m});
  PipelineRuntime rt(spec, FixedWorkers({1}, 0), &policy, 10.0);
  rt.RunTrace(GenerateUniformArrivals(2000.0, 0, SecToUs(1)));
  // Execution start times must be non-decreasing in request id.
  SimTime last = -1;
  for (const RequestPtr& r : rt.requests()) {
    if (r->hops[0].executed) {
      EXPECT_GE(r->hops[0].exec_start, last);
      last = r->hops[0].exec_start;
    }
  }
}

TEST(Metrics, InvalidRateCountsLateCompletions) {
  NaivePolicy policy;
  // SLO impossible to meet: everything completes late; all GPU time invalid.
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  const PipelineSpec spec("late", MsToUs(2), {m});
  PipelineRuntime rt(spec, FixedWorkers({1}), &policy, 10.0);
  rt.RunTrace({0, 1000, 2000});
  RunAnalysis analysis(rt.requests(), spec);
  EXPECT_DOUBLE_EQ(analysis.DropRate(), 1.0);
  EXPECT_DOUBLE_EQ(analysis.InvalidRate(), 1.0);
  EXPECT_DOUBLE_EQ(analysis.NormalizedGoodput(), 0.0);
}

TEST(Scaling, WorkerHistoryRecorded) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.enable_scaling = true;
  options.scaling_epoch = 1 * kUsPerSec;
  PipelineRuntime rt(MakeTrafficMonitoring(), options, &policy, 100.0);
  Rng rng(9);
  const auto arrivals = GenerateArrivals(RateFunction::Constant(100.0), 0, SecToUs(5), rng);
  rt.RunTrace(arrivals);
  EXPECT_GE(rt.worker_history().size(), 3u);
  for (const auto& sample : rt.worker_history()) {
    EXPECT_EQ(sample.workers.size(), 3u);
    for (int w : sample.workers) {
      EXPECT_GE(w, 1);
    }
  }
}

TEST(Runtime, UnsortedArrivalsRejected) {
  NaivePolicy policy;
  PipelineRuntime rt(MakeTrafficMonitoring(), FixedWorkers({1, 1, 1}), &policy, 10.0);
  EXPECT_THROW(rt.RunTrace({1000, 0}), CheckError);
}

TEST(Runtime, BatchSizesPlannedPerModule) {
  NaivePolicy policy;
  PipelineRuntime rt(MakeLiveVideo(), FixedWorkers({1, 1, 1, 1, 1}), &policy, 10.0);
  ASSERT_EQ(rt.batch_sizes().size(), 5u);
  for (int b : rt.batch_sizes()) {
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 32);
  }
}


TEST(ExecJitter, ZeroJitterIsDeterministicProfile) {
  NaivePolicy policy;
  RuntimeOptions options = FixedWorkers({1});
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  const PipelineSpec spec("jit", MsToUs(500), {m});
  PipelineRuntime rt(spec, options, &policy, 10.0);
  rt.RunTrace({0});
  // d(1) of eye_tracking is exactly 7 ms.
  EXPECT_EQ(rt.requests()[0]->hops[0].ExecDuration(), 7 * kUsPerMs);
}

TEST(ExecJitter, JitterVariesExecutionAroundProfile) {
  NaivePolicy policy;
  RuntimeOptions options = FixedWorkers({1});
  options.exec_jitter = 0.2;
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  const PipelineSpec spec("jit", MsToUs(2000), {m});
  PipelineRuntime rt(spec, options, &policy, 10.0);
  // Spaced arrivals so every request runs as its own batch of 1.
  rt.RunTrace(GenerateUniformArrivals(20.0, 0, SecToUs(10)));
  double sum = 0.0;
  double lo = 1e18;
  double hi = 0.0;
  std::size_t n = 0;
  for (const RequestPtr& r : rt.requests()) {
    const HopRecord& hop = r->hops[0];
    if (hop.executed) {
      const double d = static_cast<double>(hop.ExecDuration());
      sum += d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
      ++n;
    }
  }
  ASSERT_GT(n, 100u);
  const double mean = sum / static_cast<double>(n);
  // Mean near the 7 ms profile; spread clearly present; floor respected.
  EXPECT_NEAR(mean, 7000.0, 7000.0 * 0.08);
  EXPECT_GT(hi - lo, 2000.0);
  EXPECT_GE(lo, 3500.0);  // Floored at half the profile.
}

TEST(ExecJitter, DeterministicAcrossRuns) {
  const auto run = [] {
    NaivePolicy policy;
    RuntimeOptions options;
    options.fixed_workers = {1};
    options.exec_jitter = 0.3;
    ModuleSpec m;
    m.id = 0;
    m.model = "eye_tracking";
    const PipelineSpec spec("jit", MsToUs(2000), {m});
    PipelineRuntime rt(spec, options, &policy, 10.0);
    rt.RunTrace(GenerateUniformArrivals(20.0, 0, SecToUs(3)));
    Duration total = 0;
    for (const RequestPtr& r : rt.requests()) {
      total += r->hops[0].ExecDuration();
    }
    return total;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pard
