// Tests for the shared worker-roster layer (runtime/backend_fleet.h): the
// profile catalog, round-robin slot assignment, capacity-unit accounting,
// state transitions, the fault-schedule parser, and the heterogeneous
// execution semantics both substrates build on it.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/naive_policy.h"
#include "common/check.h"
#include "pipeline/apps.h"
#include "pipeline/backend_profile.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/state_board.h"

namespace pard {
namespace {

PipelineSpec OneModule(std::vector<BackendProfile> backends = {}) {
  ModuleSpec m;
  m.id = 0;
  m.model = "eye_tracking";
  PipelineSpec spec("one", MsToUs(500), {m});
  spec.set_backends(std::move(backends));
  return spec;
}

BackendProfile Grade(const char* name, double grade) {
  BackendProfile p;
  p.name = name;
  p.speed_grade = grade;
  return p;
}

TEST(BackendFleet, EmptyCatalogIsHomogeneousBaseline) {
  BackendFleet fleet(OneModule(), 2 * kUsPerSec);
  EXPECT_EQ(fleet.CatalogSize(), 1);
  const BackendSlot a = fleet.Provision(0, 0);
  const BackendSlot b = fleet.Provision(0, 0);
  EXPECT_EQ(a.worker_id, 0);
  EXPECT_EQ(b.worker_id, 1);
  EXPECT_DOUBLE_EQ(a.exec_scale, 1.0);
  EXPECT_DOUBLE_EQ(a.speed, 1.0);
  EXPECT_EQ(a.cold_start, 2 * kUsPerSec);  // Inherited default.
  fleet.SetState(0, 0, BackendState::kActive, 10);
  fleet.SetState(0, 1, BackendState::kActive, 10);
  EXPECT_EQ(fleet.ActiveCount(0), 2);
  EXPECT_DOUBLE_EQ(fleet.ActiveUnits(0), 2.0);  // Exactly the count.
  EXPECT_DOUBLE_EQ(fleet.MeanActiveSpeed(0), 1.0);
}

TEST(BackendFleet, RoundRobinAssignmentAndUnitAccounting) {
  BackendFleet fleet(OneModule({Grade("fast", 1.0), Grade("slow", 0.5)}), 2 * kUsPerSec);
  const BackendSlot w0 = fleet.Provision(0, 0);
  const BackendSlot w1 = fleet.Provision(0, 0);
  const BackendSlot w2 = fleet.Provision(0, 0);
  EXPECT_EQ(w0.profile_index, 0);
  EXPECT_EQ(w1.profile_index, 1);
  EXPECT_EQ(w2.profile_index, 0);  // Wraps around the catalog.
  EXPECT_DOUBLE_EQ(w1.exec_scale, 2.0);  // Half speed -> double duration.
  EXPECT_DOUBLE_EQ(w1.speed, 0.5);
  for (int id : {0, 1, 2}) {
    fleet.SetState(0, id, BackendState::kActive, 0);
  }
  EXPECT_EQ(fleet.ActiveCount(0), 3);
  EXPECT_DOUBLE_EQ(fleet.ActiveUnits(0), 2.5);
  EXPECT_DOUBLE_EQ(fleet.MeanActiveSpeed(0), 2.5 / 3.0);
  // Failing the slow worker removes 0.5 units.
  fleet.SetState(0, 1, BackendState::kFailed, 100);
  EXPECT_DOUBLE_EQ(fleet.ActiveUnits(0), 2.0);
  EXPECT_EQ(fleet.ProvisionedCount(0), 2);
}

TEST(BackendFleet, ProfileColdStartOverridesDefault) {
  BackendProfile slow = Grade("slow", 0.5);
  slow.cold_start = 7 * kUsPerSec;
  BackendFleet fleet(OneModule({Grade("fast", 1.0), slow}), 2 * kUsPerSec);
  EXPECT_EQ(fleet.Provision(0, 0).cold_start, 2 * kUsPerSec);
  EXPECT_EQ(fleet.Provision(0, 0).cold_start, 7 * kUsPerSec);
}

TEST(BackendFleet, PerModuleScaleAppliesOnlyToNamedModel) {
  BackendProfile quirky = Grade("quirky", 0.5);
  quirky.module_scale = {{"face_recognition", 1.25}};
  PipelineSpec lv = MakeLiveVideo();  // Module 1 is face_recognition.
  lv.set_backends({quirky});
  BackendFleet fleet(lv, 0);
  EXPECT_DOUBLE_EQ(fleet.Provision(0, 0).exec_scale, 2.0);
  EXPECT_DOUBLE_EQ(fleet.Provision(1, 0).exec_scale, 2.5);  // 1.25 / 0.5.
}

TEST(BackendFleet, TerminalStatesAreSticky) {
  BackendFleet fleet(OneModule(), 0);
  fleet.Provision(0, 0);
  fleet.SetState(0, 0, BackendState::kActive, 1);
  fleet.SetState(0, 0, BackendState::kFailed, 2);
  EXPECT_THROW(fleet.SetState(0, 0, BackendState::kActive, 3), CheckError);
  EXPECT_THROW(fleet.SetState(0, 0, BackendState::kDraining, 3), CheckError);
  EXPECT_EQ(fleet.State(0, 0), BackendState::kFailed);
  // Unknown slots are loud errors, not silent no-ops.
  EXPECT_THROW(fleet.SetState(0, 9, BackendState::kActive, 3), CheckError);
}

TEST(BackendFleet, TransitionLogRecordsRosterHistory) {
  BackendFleet fleet(OneModule(), 0);
  fleet.Provision(0, 0);
  fleet.SetState(0, 0, BackendState::kActive, 5);
  fleet.SetState(0, 0, BackendState::kDraining, 9);
  fleet.SetState(0, 0, BackendState::kRetired, 12);
  const std::vector<FleetTransition> log = fleet.transitions();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].to, BackendState::kColdStarting);
  EXPECT_EQ(log[1].to, BackendState::kActive);
  EXPECT_EQ(log[1].at, 5);
  EXPECT_EQ(log[3].to, BackendState::kRetired);
  EXPECT_EQ(log[3].at, 12);
}

TEST(FaultSchedule, ParsesKillAndAddEventsSortedByTime) {
  const auto events = ParseFaultSchedule("80:1:add:2, 60:1:kill:2");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, SecToUs(60));
  EXPECT_EQ(events[0].kind, FleetEvent::Kind::kKill);
  EXPECT_EQ(events[0].count, 2);
  EXPECT_EQ(events[1].at, SecToUs(80));
  EXPECT_EQ(events[1].kind, FleetEvent::Kind::kAdd);
  EXPECT_EQ(events[1].module_id, 1);
}

TEST(FaultSchedule, RejectsMalformedEntries) {
  EXPECT_THROW(ParseFaultSchedule("60:1:kill"), CheckError);       // Missing count.
  EXPECT_THROW(ParseFaultSchedule("60:1:explode:1"), CheckError);  // Unknown kind.
  EXPECT_THROW(ParseFaultSchedule("x:1:kill:1"), CheckError);      // Bad time.
  EXPECT_THROW(ParseFaultSchedule("60:-1:kill:1"), CheckError);    // Bad module.
  EXPECT_THROW(ParseFaultSchedule("60:1:kill:0"), CheckError);     // Bad count.
  EXPECT_THROW(ParseFaultSchedule(""), CheckError);                // No events.
}

// Errors must say WHICH event and WHICH field went wrong, quoting the bad
// token — a 40-event schedule with one typo is otherwise undebuggable.
TEST(FaultSchedule, ErrorsNameTheBadTokenAndPosition) {
  const auto message_of = [](const char* text) -> std::string {
    try {
      ParseFaultSchedule(text);
    } catch (const CheckError& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string msg = message_of("0:0:kill:1, x:1:kill:1");
    EXPECT_NE(msg.find("fault event 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("field 1 (\"x\")"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("60:zap:kill:1");
    EXPECT_NE(msg.find("fault event 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("field 2 (\"zap\")"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("60:1:explode:1");
    EXPECT_NE(msg.find("field 3 (\"explode\")"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kill|add"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("60:1:kill:9999");
    EXPECT_NE(msg.find("field 4 (\"9999\")"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[1, 4096]"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("60:1:kill");
    EXPECT_NE(msg.find("3 fields"), std::string::npos) << msg;
  }
}

TEST(EffectiveDuration, StretchesByMeanSpeedWithExactBaselineGuard) {
  ModuleState state;
  state.batch_duration = 10000;
  state.mean_speed = 1.0;
  EXPECT_EQ(EffectiveBatchDuration(state), 10000);
  state.mean_speed = 0.5;
  EXPECT_EQ(EffectiveBatchDuration(state), 20000);
  state.mean_speed = 0.75;
  EXPECT_EQ(EffectiveBatchDuration(state), 13333);
}

// --- Heterogeneous execution through the simulator ------------------------

TEST(HeterogeneousSim, HalfSpeedBackendDoublesExecutionDuration) {
  // One worker drawn from a grade-0.5 catalog: every batch takes twice the
  // profiled duration (eye_tracking d(1) = 7 ms).
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1};
  PipelineRuntime rt(OneModule({Grade("slow", 0.5)}), options, &policy, 10.0);
  rt.RunTrace({0});
  ASSERT_EQ(rt.requests().size(), 1u);
  const HopRecord& hop = rt.requests()[0]->hops[0];
  EXPECT_EQ(hop.ExecDuration(), 2 * 7 * kUsPerMs);
}

TEST(HeterogeneousSim, SyncPublishesEffectiveUnits) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {2};  // Grades 1.0 and 0.5 round-robin.
  PipelineRuntime rt(OneModule({Grade("fast", 1.0), Grade("slow", 0.5)}), options, &policy,
                     10.0);
  rt.RunTrace({0, 1000, 2000});
  const ModuleState& state = rt.board().Get(0);
  EXPECT_EQ(state.num_workers, 2);
  EXPECT_DOUBLE_EQ(state.effective_units, 1.5);
  EXPECT_DOUBLE_EQ(state.mean_speed, 0.75);
}

TEST(HeterogeneousSim, FleetEventsKillAndRecoverWorkers) {
  // Kill the only initial worker at 1 s, add a replacement at 2 s (cold
  // start 1 s -> active at ~3 s): requests sent after recovery complete,
  // requests in the hole are dropped, and nothing dangles.
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1};
  options.cold_start = 1 * kUsPerSec;
  options.fleet_events = ParseFaultSchedule("1:0:kill:1,2:0:add:1");
  PipelineRuntime rt(OneModule(), options, &policy, 10.0);
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 50; ++i) {
    arrivals.push_back(i * 100 * kUsPerMs);  // 10 req/s for 5 s.
  }
  rt.RunTrace(arrivals);
  ASSERT_EQ(rt.requests().size(), 50u);
  std::size_t dropped = 0;
  std::size_t completed_after_recovery = 0;
  for (const RequestPtr& req : rt.requests()) {
    EXPECT_TRUE(req->Terminal());
    if (req->fate == RequestFate::kDropped) {
      ++dropped;
    } else if (req->Good() && req->sent >= SecToUs(3)) {
      ++completed_after_recovery;
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(completed_after_recovery, 10u);
  // The fleet log shows the whole story: cold, active, failed, cold, active.
  const auto log = rt.fleet().transitions();
  ASSERT_GE(log.size(), 5u);
  EXPECT_EQ(log[2].to, BackendState::kFailed);
  EXPECT_EQ(log[2].at, SecToUs(1));
  EXPECT_EQ(log[3].to, BackendState::kColdStarting);
  EXPECT_EQ(log[4].to, BackendState::kActive);
  EXPECT_EQ(log[4].at, SecToUs(3));  // 2 s event + 1 s cold start.
}

}  // namespace
}  // namespace pard