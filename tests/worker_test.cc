#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/naive_policy.h"
#include "common/rng.h"
#include "models/registry.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace pard {
namespace {

// Single-module pipeline around `model` with the given SLO.
PipelineSpec OneModule(const std::string& model, Duration slo) {
  ModuleSpec m;
  m.id = 0;
  m.model = model;
  return PipelineSpec("one", slo, {m});
}

PipelineSpec TwoModules(Duration slo) {
  ModuleSpec a;
  a.id = 0;
  a.model = "eye_tracking";
  a.subs = {1};
  ModuleSpec b;
  b.id = 1;
  b.model = "expression_recognition";
  b.pres = {0};
  return PipelineSpec("two", slo, {a, b});
}

RuntimeOptions OneWorkerOptions(int modules = 1) {
  RuntimeOptions o;
  o.fixed_workers.assign(static_cast<std::size_t>(modules), 1);
  o.network_delay = 500;
  return o;
}

// eye_tracking profile: d(b) = 5ms + 2ms * b.
constexpr Duration kEyeD1 = 7 * kUsPerMs;

TEST(Worker, IdleWorkerStartsImmediatelyWithZeroWait) {
  NaivePolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(500)), OneWorkerOptions(), &policy, 10.0);
  rt.RunTrace({0});
  ASSERT_EQ(rt.requests().size(), 1u);
  const HopRecord& hop = rt.requests()[0]->hops[0];
  EXPECT_EQ(hop.arrive, 500);           // Network delay.
  EXPECT_EQ(hop.batch_entry, 500);      // Pulled immediately.
  EXPECT_EQ(hop.exec_start, 500);       // Idle worker: W = 0.
  EXPECT_EQ(hop.exec_end, 500 + kEyeD1);
  EXPECT_EQ(hop.QueueDelay(), 0);
  EXPECT_EQ(hop.BatchWait(), 0);
  EXPECT_TRUE(rt.requests()[0]->Good());
}

TEST(Worker, SecondRequestWaitsForRunningBatch) {
  NaivePolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(500)), OneWorkerOptions(), &policy, 10.0);
  // First request launches at 500; second arrives at 1500, joins the forming
  // batch and waits until the running batch ends at 500 + 7000 = 7500.
  rt.RunTrace({0, 1000});
  ASSERT_EQ(rt.requests().size(), 2u);
  const HopRecord& hop = rt.requests()[1]->hops[0];
  EXPECT_EQ(hop.arrive, 1500);
  EXPECT_EQ(hop.batch_entry, 1500);  // Space in the forming batch -> Q = 0.
  EXPECT_EQ(hop.exec_start, 500 + kEyeD1);
  EXPECT_EQ(hop.BatchWait(), 500 + kEyeD1 - 1500);
}

TEST(Worker, BatchesShareExecutionWindowAndSplitGpuTime) {
  NaivePolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(500)), OneWorkerOptions(), &policy, 10.0);
  // Requests at 0..4ms: the first executes alone; the rest form one batch.
  rt.RunTrace({0, 1000, 2000, 3000, 4000});
  const auto& reqs = rt.requests();
  ASSERT_EQ(reqs.size(), 5u);
  const SimTime second_start = reqs[1]->hops[0].exec_start;
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(reqs[i]->hops[0].exec_start, second_start) << i;
  }
  // Batch of 4: d = 5 + 2*4 = 13 ms; per-request GPU share = 13/4 ms.
  const Duration batch_d = 13 * kUsPerMs;
  EXPECT_EQ(reqs[1]->hops[0].exec_end - second_start, batch_d);
  EXPECT_EQ(reqs[1]->hops[0].gpu_time, batch_d / 4);
}

TEST(Worker, BatchWaitNeverExceedsRunningBatchDuration) {
  NaivePolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(2000)), OneWorkerOptions(), &policy, 10.0);
  Rng rng(17);
  const auto arrivals =
      GenerateArrivals(RateFunction::Constant(400.0), 0, SecToUs(3), rng);
  rt.RunTrace(arrivals);
  const Duration max_d =
      ProfileRegistry::Get("eye_tracking").BatchDuration(rt.batch_sizes()[0]);
  for (const RequestPtr& r : rt.requests()) {
    const HopRecord& hop = r->hops[0];
    if (hop.executed) {
      EXPECT_GE(hop.BatchWait(), 0);
      EXPECT_LE(hop.BatchWait(), max_d);
      EXPECT_GE(hop.QueueDelay(), 0);
    }
  }
}

TEST(Worker, BackToBackBatchesUnderLoad) {
  NaivePolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(2000)), OneWorkerOptions(), &policy, 10.0);
  // Sustained overload: batches must run back-to-back (no GPU idling):
  // each next exec_start equals the previous exec_end.
  const auto arrivals = GenerateUniformArrivals(500.0, 0, SecToUs(1));
  rt.RunTrace(arrivals);
  std::vector<std::pair<SimTime, SimTime>> windows;  // (start, end)
  for (const RequestPtr& r : rt.requests()) {
    const HopRecord& hop = r->hops[0];
    if (hop.executed) {
      windows.emplace_back(hop.exec_start, hop.exec_end);
    }
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  ASSERT_GT(windows.size(), 3u);
  for (std::size_t i = 1; i + 1 < windows.size(); ++i) {
    EXPECT_EQ(windows[i].second, windows[i + 1].first) << "gap between batches " << i;
  }
}

TEST(Worker, RequestsFlowThroughTwoModules) {
  NaivePolicy policy;
  PipelineRuntime rt(TwoModules(MsToUs(500)), OneWorkerOptions(2), &policy, 10.0);
  rt.RunTrace({0});
  const RequestPtr& r = rt.requests()[0];
  EXPECT_TRUE(r->hops[0].executed);
  EXPECT_TRUE(r->hops[1].executed);
  // Module 1 receives after module 0's exec end plus network delay.
  EXPECT_EQ(r->hops[1].arrive, r->hops[0].exec_end + 500);
  EXPECT_TRUE(r->Good());
  EXPECT_EQ(r->finish, r->hops[1].exec_end);
}

TEST(Worker, NaiveNeverDropsEvenWhenLate) {
  NaivePolicy policy;
  // SLO so tight nothing can meet it: 1 ms against a 7 ms execution.
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(1)), OneWorkerOptions(), &policy, 10.0);
  rt.RunTrace({0, 1000, 2000});
  for (const RequestPtr& r : rt.requests()) {
    EXPECT_EQ(r->fate, RequestFate::kLate);
    EXPECT_TRUE(r->hops[0].executed);  // Naive executed it anyway.
  }
}

// A policy that drops everything lets us verify the drop path end to end.
class AlwaysDropPolicy : public DropPolicy {
 public:
  bool ShouldDrop(const AdmissionContext&) override { return true; }
  std::string Name() const override { return "always-drop"; }
};

TEST(Worker, PolicyDropConsumesNoGpuTime) {
  AlwaysDropPolicy policy;
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(500)), OneWorkerOptions(), &policy, 10.0);
  rt.RunTrace({0, 1000});
  for (const RequestPtr& r : rt.requests()) {
    EXPECT_EQ(r->fate, RequestFate::kDropped);
    EXPECT_EQ(r->drop_module, 0);
    EXPECT_EQ(r->TotalGpuTime(), 0);
    EXPECT_FALSE(r->hops[0].executed);
  }
}

TEST(Worker, ExpiredRequestsPurgedFromQueue) {
  // Policy keeps everything, but purging evicts past-deadline queue entries.
  class KeepAllPolicy : public DropPolicy {
   public:
    bool ShouldDrop(const AdmissionContext&) override { return false; }
    std::string Name() const override { return "keep-all"; }
  };
  KeepAllPolicy policy;
  // Overload one worker massively with a short SLO: queued requests expire.
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(30)), OneWorkerOptions(), &policy, 10.0);
  rt.RunTrace(GenerateUniformArrivals(2000.0, 0, SecToUs(1)));
  std::size_t dropped = 0;
  for (const RequestPtr& r : rt.requests()) {
    dropped += r->fate == RequestFate::kDropped ? 1 : 0;
  }
  EXPECT_GT(dropped, 0u);
}

TEST(Dispatcher, SpreadsLoadAcrossWorkers) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {4};
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(2000)), options, &policy, 10.0);
  rt.RunTrace(GenerateUniformArrivals(800.0, 0, SecToUs(1)));
  // All requests served within a deep pipeline of 4 workers; with
  // least-loaded dispatch the completion rate must be ~4x one worker's.
  std::size_t executed = 0;
  for (const RequestPtr& r : rt.requests()) {
    executed += r->hops[0].executed ? 1 : 0;
  }
  EXPECT_EQ(executed, rt.requests().size());
}

TEST(Scaling, ColdStartDelaysActivation) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1};
  options.cold_start = SecToUs(2);
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(2000)), options, &policy, 10.0);
  ModuleRuntime& module = rt.module(0);
  EXPECT_EQ(module.ActiveWorkers(), 1);
  module.SetTargetWorkers(3);
  EXPECT_EQ(module.ActiveWorkers(), 1);       // Still warming.
  EXPECT_EQ(module.ProvisionedWorkers(), 3);
  rt.ScheduleArrival(SecToUs(3));
  rt.Run(SecToUs(4));
  EXPECT_EQ(module.ActiveWorkers(), 3);       // Warm after cold_start.
}

TEST(Scaling, DrainingReducesWorkers) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {4};
  PipelineRuntime rt(OneModule("eye_tracking", MsToUs(2000)), options, &policy, 10.0);
  ModuleRuntime& module = rt.module(0);
  module.SetTargetWorkers(2);
  // Idle workers retire immediately.
  EXPECT_EQ(module.ActiveWorkers(), 2);
}

}  // namespace
}  // namespace pard
