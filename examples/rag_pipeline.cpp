// RAG workflow case study (paper §7): proactive dropping generalizes beyond
// DNN inference pipelines — here to a rewrite -> (retrieve || search) ->
// generate workflow with a 5 s time-to-first-token SLO.
#include <cstdio>

#include "rag/rag_workflow.h"

int main() {
  pard::RagOptions options;
  options.duration_s = 60.0;

  std::printf("RAG workflow: rewrite -> (retrieve || search) -> generate, TTFT SLO %.1f s\n\n",
              pard::UsToSec(options.ttft_slo));
  std::printf("%-10s %14s %14s\n", "policy", "norm.goodput", "drop rate");
  for (const pard::RagPolicy policy :
       {pard::RagPolicy::kReactive, pard::RagPolicy::kProactive, pard::RagPolicy::kPredict}) {
    const pard::RagResult result = pard::RunRagWorkflow(policy, options);
    std::printf("%-10s %14.3f %13.1f%%\n", pard::RagPolicyName(policy).c_str(),
                result.NormalizedGoodput(), 100.0 * result.DropRate());
  }

  const pard::RagResult detail = pard::RunRagWorkflow(pard::RagPolicy::kProactive, options);
  std::printf("\nPer-stage latency (proactive), p50 / p90 / p99 in ms:\n");
  for (const auto& stage : detail.stages) {
    if (stage.latency.Empty()) {
      continue;
    }
    std::printf("  %-9s %8.1f %8.1f %8.1f\n", stage.name.c_str(),
                stage.latency.Quantile(0.50) / 1000.0, stage.latency.Quantile(0.90) / 1000.0,
                stage.latency.Quantile(0.99) / 1000.0);
  }
  std::printf("\nsearch shows the long network tail; rewrite varies with output length —\n");
  std::printf("the two estimation challenges §7 identifies for non-DNN pipelines.\n");
  return 0;
}
