// Walkthrough of PARD's bi-directional latency estimation (paper §4.2).
//
// Builds the lv pipeline, publishes synthetic module states to the board and
// shows, step by step, how the Request Broker assembles the end-to-end
// estimate L = L_pre + L_cur + L_sub and how the lambda knob trades
// mis-kept versus mis-dropped requests.
#include <cstdio>

#include "core/irwin_hall.h"
#include "core/latency_estimator.h"
#include "pipeline/apps.h"
#include "runtime/state_board.h"

int main() {
  const pard::PipelineSpec lv = pard::MakeLiveVideo();
  std::printf("Pipeline: %s, %d modules, SLO %.0f ms\n\n", lv.app_name().c_str(),
              lv.NumModules(), pard::UsToMs(lv.slo()));

  // Publish a synthetic runtime state: every module batches at d = 40 ms,
  // module 3 is congested (20 ms average queueing).
  pard::StateBoard board(lv.NumModules());
  for (int i = 0; i < lv.NumModules(); ++i) {
    pard::ModuleState s;
    s.module_id = i;
    s.batch_duration = 40 * pard::kUsPerMs;
    s.batch_size = 8;
    s.avg_queue_delay = (i == 3) ? 20.0 * pard::kUsPerMs : 1.0 * pard::kUsPerMs;
    board.Publish(std::move(s));
  }

  pard::EstimatorOptions options;
  options.mc_samples = 20000;
  pard::LatencyEstimator estimator(&lv, &board, options, pard::Rng(1));

  std::printf("L_sub per module (sum q_i + sum d_i + w_k, lambda = 0.1):\n");
  for (int k = 0; k < lv.NumModules(); ++k) {
    const pard::Duration sub = estimator.EstimateSubsequent(k);
    std::printf("  at M%d: L_sub = %6.1f ms", k + 1, pard::UsToMs(sub));
    const auto& paths = lv.DownstreamPaths(k);
    if (!paths[0].empty()) {
      const pard::Duration w = estimator.AggregateWaitQuantile(paths[0], 0.1);
      std::printf("   (of which batch-wait sweet spot w_k = %5.1f ms over %zu modules)",
                  pard::UsToMs(w), paths[0].size());
    }
    std::printf("\n");
  }

  std::printf("\nA request at M1 whose batch starts at t_e with d_1 = 40 ms is dropped\n");
  std::printf("iff (t_e - t_s) + d_1 + L_sub > SLO, i.e. once it has already consumed\n");
  std::printf("more than %.1f ms before executing at M1.\n",
              pard::UsToMs(lv.slo() - 40 * pard::kUsPerMs - estimator.EstimateSubsequent(0)));

  std::printf("\nThe lambda knob (w_k = F^-1(lambda) of the aggregated batch wait):\n");
  std::printf("%-8s %14s %s\n", "lambda", "w_1 (ms)", "failure mode");
  const auto& path = lv.DownstreamPaths(0)[0];
  for (const double lambda : {0.0, 0.1, 0.5, 1.0}) {
    const pard::Duration w = estimator.AggregateWaitQuantile(path, lambda);
    const char* note = lambda == 0.0   ? "under-estimates: mis-keeps doomed requests"
                       : lambda == 1.0 ? "over-estimates: mis-drops viable requests"
                       : lambda == 0.5 ? "median"
                                       : "paper default (sweet spot)";
    std::printf("%-8.2f %14.1f %s\n", lambda, pard::UsToMs(w), note);
  }

  std::printf("\nAnalytic check (Irwin-Hall, 4 downstream modules, equal d):\n");
  std::printf("  F^-1(0.1) / sum d = %.3f  (paper's worked example: 0.31)\n",
              pard::IrwinHallQuantile(4, 0.1) / 4.0);
  return 0;
}
