// Traffic monitoring under a workload burst — the motivating scenario of the
// paper's Fig. 1/2: compare where each policy drops requests and how much
// GPU time it wastes.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

int main() {
  pard::ExperimentConfig config;
  config.app = "tm";
  config.trace = "azure";
  config.duration_s = 180.0;
  config.base_rate = 180.0;

  std::printf("tm pipeline (object detection -> face recognition -> text recognition)\n");
  std::printf("under an Azure-Functions-like spiky trace.\n\n");

  for (const char* policy : {"pard", "nexus", "clipper++"}) {
    config.policy = policy;
    const pard::ExperimentResult result = pard::RunExperiment(config);
    const pard::RunAnalysis& a = *result.analysis;
    std::printf("%s:\n", policy);
    std::printf("  drop rate    %6.2f%%   invalid rate %6.2f%%\n", 100.0 * a.DropRate(),
                100.0 * a.InvalidRate());
    const std::vector<double> share = a.PerModuleDropShare();
    std::printf("  drop placement per module:");
    for (std::size_t m = 0; m < share.size(); ++m) {
      std::printf("  M%zu %5.1f%%", m + 1, 100.0 * share[m]);
    }
    std::printf("\n");
    const std::vector<double> queue = a.MeanQueueDelayPerModule();
    std::printf("  mean queueing delay (ms): ");
    for (double q : queue) {
      std::printf(" %6.2f", q / 1000.0);
    }
    std::printf("\n\n");
  }
  std::printf("Reactive policies push drops into the last module (wasted GPU time);\n");
  std::printf("PARD concentrates them at the front of the pipeline.\n");
  return 0;
}
