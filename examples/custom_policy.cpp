// Plugging a user-defined drop policy into the serving runtime.
//
// The DropPolicy interface has three decision points: ShouldDrop (Request
// Broker, at batch-entry time), ChoosePopSide (queue order), and
// AdmitAtModule (enqueue-time shedding). This example implements a simple
// "slack margin" policy — drop when the remaining budget falls below a fixed
// multiple of the current module's batch duration — and races it against
// PARD and Nexus.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "metrics/analysis.h"
#include "pipeline/apps.h"
#include "runtime/drop_policy.h"
#include "runtime/pipeline_runtime.h"
#include "baselines/policy_factory.h"
#include "trace/arrival_generator.h"
#include "trace/traces.h"

namespace {

class SlackMarginPolicy : public pard::DropPolicy {
 public:
  explicit SlackMarginPolicy(double margin) : margin_(margin) {}

  bool ShouldDrop(const pard::AdmissionContext& ctx) override {
    // Keep only if the remaining budget after this module covers
    // margin_ x the batch duration of every remaining module (a crude
    // forward-looking rule — no runtime state needed).
    const pard::Duration after_current =
        ctx.request->deadline - (ctx.batch_start + ctx.batch_duration);
    pard::Duration needed = 0;
    for (const auto& path : spec_->DownstreamPaths(ctx.module_id)) {
      pard::Duration path_needed = 0;
      for (int id : path) {
        path_needed += static_cast<pard::Duration>(margin_ * ctx.batch_duration);
        (void)id;
      }
      needed = std::max(needed, path_needed);
    }
    return after_current < needed;
  }

  std::string Name() const override { return "slack-margin"; }

 private:
  double margin_;
};

double RunWith(pard::DropPolicy* policy, const std::vector<pard::SimTime>& arrivals,
               const pard::PipelineSpec& spec, double rate) {
  pard::RuntimeOptions options;
  pard::PipelineRuntime runtime(spec, options, policy, rate);
  runtime.RunTrace(arrivals);
  pard::RunAnalysis analysis(runtime.requests(), spec);
  std::printf("%-14s goodput/s %8.1f  drop %6.2f%%  invalid %6.2f%%\n", policy->Name().c_str(),
              analysis.MeanGoodput(), 100.0 * analysis.DropRate(),
              100.0 * analysis.InvalidRate());
  return analysis.MeanGoodput();
}

}  // namespace

int main() {
  const pard::PipelineSpec spec = pard::MakeLiveVideo();
  pard::TraceOptions trace_options;
  trace_options.duration_s = 120.0;
  trace_options.base_rate = 260.0;  // Bursts exceed the provisioned capacity.
  const pard::RateFunction trace = pard::MakeTweetTrace(trace_options);
  pard::Rng rng(7);
  const std::vector<pard::SimTime> arrivals =
      pard::GenerateArrivals(trace, 0, pard::SecToUs(trace_options.duration_s), rng);
  const double mean_rate = trace.MeanRate(0, pard::SecToUs(trace_options.duration_s));

  std::printf("lv pipeline, %zu requests, same arrival stream for every policy.\n\n",
              arrivals.size());

  SlackMarginPolicy custom(1.5);
  RunWith(&custom, arrivals, spec, mean_rate);

  const auto pard_policy = pard::MakePolicy("pard");
  RunWith(pard_policy.get(), arrivals, spec, mean_rate);

  const auto nexus = pard::MakePolicy("nexus");
  RunWith(nexus.get(), arrivals, spec, mean_rate);

  std::printf("\nImplement pard::DropPolicy to experiment with your own rules.\n");
  return 0;
}
