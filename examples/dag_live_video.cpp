// DAG-style live video analysis (the paper's `da` app): person detection
// fans out to pose + face branches that merge in expression recognition.
// Demonstrates DAG latency estimation (max over paths), split/merge
// semantics, and loading a pipeline from its JSON definition.
#include <cstdio>

#include "harness/experiment.h"
#include "pipeline/apps.h"
#include "pipeline/pipeline_spec.h"

int main() {
  // Pipelines are defined via JSON (name, id, pres, subs), as in the paper.
  const pard::PipelineSpec da = pard::MakeDagLiveVideo();
  std::printf("Pipeline '%s' (SLO %.0f ms), defined as JSON:\n%s\n\n", da.app_name().c_str(),
              pard::UsToMs(da.slo()), da.ToJson().Dump(2).c_str());

  // Round-trip through the JSON loader to show the config path.
  const pard::PipelineSpec loaded = pard::PipelineSpec::FromJsonText(da.ToJson().Dump());
  std::printf("Reloaded pipeline has %d modules; downstream paths from the source:\n",
              loaded.NumModules());
  for (const auto& path : loaded.DownstreamPaths(loaded.SourceModule())) {
    std::printf("  source ->");
    for (int id : path) {
      std::printf(" M%d", id + 1);
    }
    std::printf("\n");
  }

  pard::ExperimentConfig config;
  config.app = "da";
  config.trace = "tweet";
  config.duration_s = 150.0;
  config.base_rate = 120.0;

  std::printf("\nServing `da` under a bursty trace:\n");
  std::printf("%-12s %14s %14s\n", "policy", "drop rate", "invalid rate");
  for (const char* policy : {"pard", "nexus", "clipper++"}) {
    config.policy = policy;
    const pard::ExperimentResult result = pard::RunExperiment(config);
    std::printf("%-12s %13.2f%% %13.2f%%\n", policy, 100.0 * result.analysis->DropRate(),
                100.0 * result.analysis->InvalidRate());
  }
  std::printf("\nA drop on one branch invalidates the sibling branch's work, so the\n");
  std::printf("DAG invalid rate runs slightly above the chain pipelines (paper §5.2).\n");
  return 0;
}
