// Quickstart: serve the traffic-monitoring pipeline under a bursty trace
// with PARD, and print the headline metrics next to the Nexus baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.h"

int main() {
  pard::ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.duration_s = 120.0;
  config.base_rate = 150.0;

  std::printf("Serving the 3-model traffic-monitoring pipeline (SLO 400 ms)\n");
  std::printf("under a bursty Twitter-like trace, ~%.0f req/s for %.0f s.\n\n",
              config.base_rate, config.duration_s);
  std::printf("%-12s %12s %12s %14s %14s\n", "policy", "goodput/s", "norm.goodput",
              "drop rate", "invalid rate");

  for (const char* policy : {"pard", "nexus", "clipper++", "naive"}) {
    config.policy = policy;
    const pard::ExperimentResult result = pard::RunExperiment(config);
    const pard::RunAnalysis& a = *result.analysis;
    std::printf("%-12s %12.1f %12.3f %13.2f%% %13.2f%%\n", policy, a.MeanGoodput(),
                a.NormalizedGoodput(), 100.0 * a.DropRate(), 100.0 * a.InvalidRate());
  }
  std::printf("\nPARD keeps goodput high by dropping early (proactive estimation)\n");
  std::printf("and dropping the right requests (adaptive HBF/LBF priority).\n");
  return 0;
}
